"""Compiled tick kernels: selection machinery and bit-exactness.

Evidence layers for the kernel contract (see
``repro/core/hazard_kernel.py``):

1. *Selection*: ``REPRO_KERNEL`` resolution — defaults, explicit
   choices, ``auto``, invalid values, and the degrade-to-numpy warning
   when a requested compiled kernel cannot be built (a missing
   toolchain must never break a run).
2. *Capability probe*: a kernel only engages for protocols whose
   declared ``tick_kernel`` rule matches their footprint.
3. *Bit-exactness*: on the same presampled draws a compiled kernel
   replays ``apply_hazard_free``'s numpy path (itself pinned against
   the per-tick loop) bit-for-bit — on the adversarial topologies
   (star, 3-ring, torus) for all four footprint protocols.
4. *Engine identity*: with pinned block boundaries a full
   ``SparseSequentialEngine`` run is bit-identical whichever kernel
   applies the blocks.

Compiled-kernel layers skip loudly when no C toolchain (and no numba)
is present; the selection/fallback layers run everywhere by stubbing
the builders.
"""

import numpy as np
import pytest

from repro.core import hazard_kernel
from repro.core.exceptions import ConfigurationError
from repro.core.hazard import apply_hazard_free
from repro.core.hazard_kernel import (
    KERNEL_ENV,
    KERNEL_NAMES,
    RULE_IDS,
    KernelUnavailable,
    TickKernel,
    active_kernel,
    active_kernel_name,
    available_kernels,
    get_kernel,
    kernel_for,
    reset_active_kernel,
)
from repro.engine.sparse_async import SparseSequentialEngine
from repro.graphs.families import star
from repro.graphs.sparse import ring, torus
from repro.protocols.base import TickFootprint
from repro.protocols.three_majority import ThreeMajoritySequential
from repro.protocols.two_choices import TwoChoicesSequential
from repro.protocols.undecided_state import UndecidedStateSequential
from repro.protocols.voter import VoterSequential
from repro.workloads.initial import benchmark_split

FOOTPRINT_PROTOCOLS = [
    VoterSequential,
    TwoChoicesSequential,
    ThreeMajoritySequential,
    UndecidedStateSequential,
]

ADVERSARIAL_TOPOLOGIES = [
    ("star", lambda: star(12)),
    ("ring3", lambda: ring(3)),
    ("torus5x6", lambda: torus(5, 6)),
]

#: compiled kernels present in this environment (empty is fine — the
#: bit-exactness layers then skip loudly instead of silently passing).
COMPILED_AVAILABLE = [
    name for name, probe in available_kernels().items() if probe.available and name != "numpy"
]

needs_compiled = pytest.mark.skipif(
    not COMPILED_AVAILABLE,
    reason="no compiled kernel available (no C toolchain and no numba) — "
    "numpy fallback covered by the selection tests",
)


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Every test starts unresolved with no ``REPRO_KERNEL`` set."""
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    reset_active_kernel()
    yield
    reset_active_kernel()


def _fail_builders(monkeypatch, detail="stubbed away"):
    """Make every compiled kernel unavailable (fresh build caches)."""

    def refuse():
        raise KernelUnavailable(detail)

    monkeypatch.setattr(hazard_kernel, "_kernels", {})
    monkeypatch.setattr(hazard_kernel, "_failures", {})
    monkeypatch.setattr(
        hazard_kernel, "_BUILDERS", {name: refuse for name in hazard_kernel._BUILDERS}
    )


class TestSelection:
    def test_default_is_numpy(self):
        assert active_kernel() is None
        assert active_kernel_name() == "numpy"

    @pytest.mark.parametrize("value", ["numpy", "", "  NumPy  "])
    def test_explicit_numpy_spellings(self, monkeypatch, value):
        monkeypatch.setenv(KERNEL_ENV, value)
        reset_active_kernel()
        assert active_kernel() is None

    def test_invalid_name_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fortran")
        reset_active_kernel()
        with pytest.raises(ConfigurationError, match="REPRO_KERNEL"):
            active_kernel()

    def test_get_kernel_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            get_kernel("fortran")

    def test_explicit_unavailable_get_kernel_raises(self, monkeypatch):
        _fail_builders(monkeypatch)
        with pytest.raises(KernelUnavailable):
            get_kernel("c")

    def test_auto_degrades_to_numpy_silently(self, monkeypatch):
        _fail_builders(monkeypatch)
        assert get_kernel("auto") is None
        monkeypatch.setenv(KERNEL_ENV, "auto")
        reset_active_kernel()
        assert active_kernel() is None

    def test_explicit_unavailable_env_warns_and_degrades(self, monkeypatch):
        _fail_builders(monkeypatch, detail="no toolchain here")
        monkeypatch.setenv(KERNEL_ENV, "c")
        reset_active_kernel()
        with pytest.warns(RuntimeWarning, match="no toolchain here"):
            kernel = active_kernel()
        assert kernel is None
        assert active_kernel_name() == "numpy"

    def test_engine_survives_kernel_build_failure(self, monkeypatch):
        # The satellite contract: a broken/missing compiled kernel can
        # never break a run — the engine warns once and runs on numpy.
        _fail_builders(monkeypatch)
        monkeypatch.setenv(KERNEL_ENV, "c")
        reset_active_kernel()
        engine = SparseSequentialEngine(TwoChoicesSequential(), torus(5, 6))
        with pytest.warns(RuntimeWarning):
            result = engine.run(benchmark_split(30), seed=3)
        assert result.final.n == 30

    def test_resolution_is_cached_until_reset(self, monkeypatch):
        assert active_kernel() is None
        monkeypatch.setenv(KERNEL_ENV, "definitely-invalid")
        # still resolved: the env change is invisible without a reset.
        assert active_kernel() is None
        reset_active_kernel()
        with pytest.raises(ConfigurationError):
            active_kernel()

    def test_probe_always_lists_numpy(self):
        probes = available_kernels()
        assert probes["numpy"].available
        assert set(probes) == {"numpy", "c", "numba"}
        assert set(KERNEL_NAMES) == {"numpy", "c", "numba", "auto"}


class TestCapabilityProbe:
    @pytest.mark.parametrize("proto_cls", FOOTPRINT_PROTOCOLS)
    def test_footprint_protocols_declare_known_rules(self, proto_cls):
        protocol = proto_cls()
        assert protocol.tick_kernel in RULE_IDS
        assert TickKernel().supports(protocol)

    def test_no_rule_means_no_kernel(self):
        class Undeclared(TwoChoicesSequential):
            tick_kernel = None

        assert not TickKernel().supports(Undeclared())

    def test_rule_footprint_mismatch_refused(self):
        class Mismatched(TwoChoicesSequential):
            tick_kernel = "voter"  # voter samples 1, footprint says 2

        assert not TickKernel().supports(Mismatched())

    def test_kernel_for_returns_none_on_numpy(self):
        assert kernel_for(TwoChoicesSequential()) is None

    @needs_compiled
    def test_kernel_for_respects_protocol_support(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, COMPILED_AVAILABLE[0])
        reset_active_kernel()

        class Undeclared(TwoChoicesSequential):
            tick_kernel = None

        assert kernel_for(TwoChoicesSequential()) is not None
        assert kernel_for(Undeclared()) is None


@needs_compiled
class TestBitExactness:
    """Same presampled draws => compiled and numpy paths match exactly."""

    @pytest.mark.parametrize("kernel_name", COMPILED_AVAILABLE)
    @pytest.mark.parametrize("proto_cls", FOOTPRINT_PROTOCOLS)
    @pytest.mark.parametrize("topo_name,topo_factory", ADVERSARIAL_TOPOLOGIES)
    def test_block_apply_matches_numpy(self, kernel_name, proto_cls, topo_name, topo_factory):
        protocol = proto_cls()
        kernel = get_kernel(kernel_name)
        topology = topo_factory()
        n = topology.n
        rng = np.random.default_rng(42)
        colors = rng.integers(0, 3, size=n)
        state_kernel = protocol.make_state(colors.copy(), 3)
        state_numpy = protocol.make_state(colors.copy(), 3)
        nodes = rng.integers(0, n, size=900)
        targets = topology.sample_neighbors_block(nodes, protocol.tick_footprint.samples, rng)
        apply_hazard_free(protocol, state_kernel, nodes, targets, kernel=kernel)
        apply_hazard_free(protocol, state_numpy, nodes, targets, kernel=None)
        assert np.array_equal(state_kernel.colors, state_numpy.colors)

    @pytest.mark.parametrize("kernel_name", COMPILED_AVAILABLE)
    def test_fixed_block_engine_runs_are_identical(self, monkeypatch, kernel_name):
        # Adaptive block sizing feeds on the hazard-cut count, which
        # only the numpy path observes — so identity across kernels
        # holds exactly when the block boundaries are pinned.
        topology = torus(16, 16)
        config = benchmark_split(topology.n)
        fingerprints = {}
        for name in ("numpy", kernel_name):
            monkeypatch.setenv(KERNEL_ENV, name)
            reset_active_kernel()
            engine = SparseSequentialEngine(TwoChoicesSequential(), topology, block_ticks=128)
            result = engine.run(config, seed=11)
            fingerprints[name] = (result.rounds, result.winner, result.final.counts)
        assert fingerprints["numpy"] == fingerprints[kernel_name]

    @pytest.mark.parametrize("kernel_name", COMPILED_AVAILABLE)
    def test_undecided_state_uses_last_color_as_undecided(self, kernel_name):
        # The USD rule threads state.k - 1 through the ABI; an off-by-
        # one there would silently corrupt runs, so pin a tiny block
        # where the undecided transitions are forced.
        protocol = UndecidedStateSequential()
        kernel = get_kernel(kernel_name)
        colors = np.array([0, 1, 2, 2], dtype=np.int64)  # 2 == undecided for k=3
        state_kernel = protocol.make_state(colors.copy(), 3)
        state_numpy = protocol.make_state(colors.copy(), 3)
        nodes = np.array([0, 2, 3, 1], dtype=np.int64)
        targets = np.array([[1], [0], [2], [3]], dtype=np.int64)
        apply_hazard_free(protocol, state_kernel, nodes, targets, kernel=kernel)
        apply_hazard_free(protocol, state_numpy, nodes, targets, kernel=None)
        assert np.array_equal(state_kernel.colors, state_numpy.colors)

"""Tests for the Sync Gadget primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.sync_gadget import SyncSampleBuffer, jump_target, median_of_samples


class TestBuffer:
    def test_collect_and_age(self):
        buffer = SyncSampleBuffer()
        # Sample value 100 collected when our real time was 40 ...
        buffer.collect(phase=0, sampled_real_time=100, own_real_time=40)
        # ... aged to our real time 55 gives 100 + (55 - 40) = 115.
        assert buffer.aged_samples(own_real_time=55) == [115]

    def test_multiple_samples_age_independently(self):
        buffer = SyncSampleBuffer()
        buffer.collect(0, 100, 40)
        buffer.collect(0, 90, 45)
        assert sorted(buffer.aged_samples(50)) == sorted([110, 95])

    def test_new_phase_clears_stale_samples(self):
        buffer = SyncSampleBuffer()
        buffer.collect(0, 100, 40)
        buffer.collect(1, 200, 60)
        assert buffer.phase == 1
        assert len(buffer) == 1
        assert buffer.aged_samples(60) == [200]

    def test_clear(self):
        buffer = SyncSampleBuffer()
        buffer.collect(0, 10, 0)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.phase == -1


class TestMedian:
    def test_odd(self):
        assert median_of_samples([3, 1, 2]) == 2

    def test_even_takes_lower(self):
        assert median_of_samples([1, 2, 3, 4]) == 2

    def test_single(self):
        assert median_of_samples([7]) == 7

    def test_robust_to_outliers(self):
        assert median_of_samples([5, 5, 5, 5, 10**9]) == 5


class TestJumpTarget:
    def test_basic_jump(self):
        buffer = SyncSampleBuffer()
        for value in (98, 100, 102):
            buffer.collect(phase=2, sampled_real_time=value, own_real_time=100)
        target = jump_target(buffer, phase=2, own_real_time=100, sync_start=50)
        assert target == 100

    def test_ageing_applied_at_jump(self):
        buffer = SyncSampleBuffer()
        buffer.collect(phase=0, sampled_real_time=100, own_real_time=90)
        # ten more own ticks: aged sample = 110
        target = jump_target(buffer, phase=0, own_real_time=100, sync_start=0)
        assert target == 110

    def test_clamped_from_below(self):
        """A speeder told to go far back is clamped to the sync start,
        so it never re-runs the phase's Two-Choices/Bit-Propagation."""
        buffer = SyncSampleBuffer()
        buffer.collect(phase=1, sampled_real_time=10, own_real_time=10)
        target = jump_target(buffer, phase=1, own_real_time=10, sync_start=80)
        assert target == 80

    def test_none_without_samples(self):
        assert jump_target(SyncSampleBuffer(), phase=0, own_real_time=5, sync_start=0) is None

    def test_none_for_stale_phase(self):
        buffer = SyncSampleBuffer()
        buffer.collect(phase=0, sampled_real_time=50, own_real_time=50)
        assert jump_target(buffer, phase=1, own_real_time=60, sync_start=0) is None


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    own_rt=st.integers(min_value=0, max_value=10**6),
    elapsed=st.integers(min_value=0, max_value=1000),
)
def test_property_ageing_shifts_median_exactly(samples, own_rt, elapsed):
    """Ageing by `elapsed` own ticks shifts every sample — and hence the
    median — by exactly `elapsed`."""
    buffer = SyncSampleBuffer()
    for s in samples:
        buffer.collect(0, s, own_rt)
    before = median_of_samples(buffer.aged_samples(own_rt))
    after = median_of_samples(buffer.aged_samples(own_rt + elapsed))
    assert after - before == elapsed
    assert before == median_of_samples(samples)

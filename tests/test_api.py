"""Tests for the declarative API: spec round-trip, registry hygiene,
and the `simulate` exactness contract.

The acceptance bar (ISSUE 3): ``SimulationSpec.from_dict(spec.to_dict())``
is identity, and for a fixed seed ``simulate(spec)`` with ``reps=1``
reproduces value-for-value the hand-wired
``fastest_engine(...).run(...)`` path it replaces, across all
registered protocols on ``K_n``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DELAYS,
    FAULTS,
    INITIALS,
    PROTOCOLS,
    STOPS,
    TOPOLOGIES,
    SimulationSpec,
    resolve,
    simulate,
)
from repro.core.exceptions import ConfigurationError
from repro.engine.dispatch import fastest_engine
from repro.engine.ensemble import run_replicated
from repro.graphs.complete import CompleteGraph
from repro.workloads.initial import two_colors


def _result_payloads(runs):
    return [r.to_dict() for r in runs]


class TestSpecRoundTrip:
    SPECS = [
        SimulationSpec(protocol="two-choices", n=1000),
        SimulationSpec(
            protocol="one-extra-bit",
            n=5000,
            protocol_params={"bp_rounds": 9},
            model="synchronous",
            initial="theorem-1-1-gap",
            initial_params={"k": 8, "z": 2.0},
            reps=12,
            seed=99,
            max_steps=400,
        ),
        SimulationSpec(
            protocol="two-choices",
            n=600,
            model="continuous",
            delay="exponential",
            delay_params={"rate": 0.5},
            stop="near-consensus",
            stop_params={"epsilon": 0.1},
            max_time=30.0,
            seed=7,
        ),
        SimulationSpec(
            protocol="voter",
            n=64,
            topology="ring",
            model="sequential",
            initial="balanced",
            initial_params={"k": 2},
            reps=3,
            seed=0,
        ),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.protocol + "/" + s.model)
    def test_from_dict_to_dict_is_identity(self, spec):
        assert SimulationSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.protocol + "/" + s.model)
    def test_dict_form_is_json_serializable(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert SimulationSpec.from_dict(payload) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown SimulationSpec field"):
            SimulationSpec.from_dict({"protocol": "voter", "n": 10, "bogus": 1})

    def test_replace_returns_modified_copy(self):
        spec = SimulationSpec(protocol="voter", n=100, seed=1)
        bigger = spec.replace(n=200)
        assert bigger.n == 200 and spec.n == 100 and bigger.seed == 1

    def test_params_are_copied_not_aliased(self):
        params = {"k": 4}
        spec = SimulationSpec(protocol="voter", n=100, initial="balanced", initial_params=params)
        params["k"] = 9
        assert spec.initial_params == {"k": 4}


class TestSpecValidation:
    def test_rejects_bad_model(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            SimulationSpec(protocol="voter", n=10, model="warp")

    def test_rejects_nonpositive_reps(self):
        with pytest.raises(ConfigurationError, match="reps"):
            SimulationSpec(protocol="voter", n=10, reps=0)

    def test_rejects_max_time_off_continuous(self):
        with pytest.raises(ConfigurationError, match="max_time"):
            SimulationSpec(protocol="voter", n=10, model="sequential", max_time=1.0)

    def test_rejects_max_steps_on_continuous(self):
        with pytest.raises(ConfigurationError, match="max_time"):
            SimulationSpec(protocol="voter", n=10, model="continuous", max_steps=5)

    def test_rejects_trace_with_ensemble(self):
        with pytest.raises(ConfigurationError, match="record_trace"):
            SimulationSpec(protocol="voter", n=10, reps=4, record_trace=True)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ConfigurationError, match="seed"):
            SimulationSpec(protocol="voter", n=10, seed="entropy")


class TestRegistries:
    def test_expected_builtin_names(self):
        assert {"two-choices", "voter", "three-majority", "undecided-state",
                "one-extra-bit", "async-plurality"} <= set(PROTOCOLS.names())
        assert "complete" in TOPOLOGIES and "ring" in TOPOLOGIES
        assert {"dynamic-ring", "dynamic-torus"} <= set(TOPOLOGIES.names())
        assert {"two-colors", "balanced", "benchmark-split", "zipf-sampled"} <= set(INITIALS.names())
        assert {"none", "exponential", "fixed"} <= set(DELAYS.names())
        assert {"consensus", "near-consensus", "plurality-fraction"} <= set(STOPS.names())
        assert {"loss", "stubborn", "byzantine"} <= set(FAULTS.names())

    def test_unknown_name_error_lists_registered(self):
        with pytest.raises(ConfigurationError, match="two-choices"):
            PROTOCOLS.get("there-is-no-such-protocol")

    def test_unknown_param_rejected_with_valid_names(self):
        with pytest.raises(ConfigurationError, match="rate"):
            DELAYS.build("exponential", {"speed": 2.0})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ConfigurationError, match="gap"):
            INITIALS.build("two-colors", {}, 100)

    def test_cli_strings_are_coerced_by_kind(self):
        config = INITIALS.build("two-colors", {"gap": "10"}, 100)
        assert config.counts == (55, 45)

    def test_bool_params_accept_both_polarities(self):
        entry = PROTOCOLS.get("async-plurality")
        assert entry.build("sequential", {"sync_enabled": "false"}).params.sync_enabled is False
        assert entry.build("sequential", {"sync_enabled": "on"}).params.sync_enabled is True

    def test_unrecognised_bool_string_rejected(self):
        with pytest.raises(ConfigurationError, match="expects bool"):
            PROTOCOLS.get("async-plurality").build("sequential", {"sync_enabled": "enable"})

    def test_every_entry_has_description_and_doc(self):
        for registry in (TOPOLOGIES, INITIALS, DELAYS, STOPS):
            for name in registry.names():
                entry = registry.get(name)
                assert entry.description, f"{registry.kind} {name} lacks a description"
        for name in PROTOCOLS.names():
            assert PROTOCOLS.get(name).description

    def test_protocol_models_cover_the_paper(self):
        assert PROTOCOLS.get("two-choices").models() == ["synchronous", "sequential", "continuous"]
        assert PROTOCOLS.get("one-extra-bit").models() == ["synchronous"]
        assert PROTOCOLS.get("async-plurality").models() == ["sequential", "continuous"]

    def test_unsupported_model_raises(self):
        with pytest.raises(ConfigurationError, match="does not implement"):
            PROTOCOLS.get("one-extra-bit").build("sequential")


def _exactness_cases():
    """(protocol, model) across all registered protocols on K_n.

    Budgets are tight (the contract is value equality, not
    convergence), except that n and the budget are chosen so the fast
    protocols do converge — exercising the full stop path too.
    """
    cases = []
    for name in PROTOCOLS.names():
        entry = PROTOCOLS.get(name)
        for model in entry.models():
            cases.append(pytest.param(name, model, id=f"{name}/{model}"))
    return cases


class TestSimulateExactness:
    """`simulate` is routing + aggregation only: zero added randomness."""

    N = 300
    SEED = 20170725

    def _spec(self, name, model, reps=1):
        budget = {}
        if model == "continuous":
            budget["max_time"] = 8.0
        elif model == "sequential":
            budget["max_steps"] = 40 * self.N
        else:
            budget["max_steps"] = 200
        return SimulationSpec(
            protocol=name,
            n=self.N,
            model=model,
            initial="two-colors",
            initial_params={"gap": self.N // 5},
            reps=reps,
            seed=self.SEED,
            **budget,
        )

    def _hand_wired_engine(self, name, model, reps=1):
        protocol = PROTOCOLS.get(name).factory_for(model)()
        return fastest_engine(protocol, CompleteGraph(self.N), model=model, n_reps=reps)

    @pytest.mark.parametrize("name,model", _exactness_cases())
    def test_reps_1_reproduces_hand_wired_run(self, name, model):
        spec = self._spec(name, model)
        sim = simulate(spec)
        engine = self._hand_wired_engine(name, model)
        kwargs = (
            {"max_time": spec.max_time} if model == "continuous"
            else {"max_rounds": spec.max_steps} if model == "synchronous"
            else {"max_ticks": spec.max_steps}
        )
        reference = engine.run(two_colors(self.N, self.N // 5), seed=self.SEED, **kwargs)
        assert sim.engine == type(engine).__name__
        assert _result_payloads(sim.runs) == _result_payloads([reference])

    @pytest.mark.parametrize(
        "name,model",
        [("two-choices", "sequential"), ("voter", "synchronous"), ("two-choices", "continuous")],
    )
    def test_ensembles_reproduce_run_replicated(self, name, model):
        reps = 5
        spec = self._spec(name, model, reps=reps)
        sim = simulate(spec)
        engine = self._hand_wired_engine(name, model, reps=reps)
        kwargs = (
            {"max_time": spec.max_time} if model == "continuous"
            else {"max_rounds": spec.max_steps} if model == "synchronous"
            else {"max_ticks": spec.max_steps}
        )
        reference = run_replicated(
            engine, two_colors(self.N, self.N // 5), reps, seed=self.SEED, **kwargs
        )
        assert _result_payloads(sim.runs) == _result_payloads(reference)

    def test_same_spec_same_values(self):
        spec = self._spec("two-choices", "sequential", reps=3)
        assert _result_payloads(simulate(spec).runs) == _result_payloads(simulate(spec).runs)


def _json_hop(spec: SimulationSpec) -> SimulationSpec:
    """A real serialize/deserialize round trip, not just dict identity."""
    return SimulationSpec.from_dict(json.loads(json.dumps(spec.to_dict())))


class TestSpecSurvivesJson:
    """The campaign cache persists specs as JSON and replays results by
    content hash, so a spec must not merely round-trip as a dict — it
    must *simulate identically* after a real ``json.dumps``/``loads``
    hop.  Asserted across every registered protocol and model."""

    @pytest.mark.parametrize("name,model", _exactness_cases())
    def test_json_hop_preserves_simulation(self, name, model):
        spec = TestSimulateExactness()._spec(name, model)
        hopped = _json_hop(spec)
        assert hopped == spec
        assert _result_payloads(simulate(hopped).runs) == _result_payloads(simulate(spec).runs)

    def test_json_hop_preserves_ensemble_simulation(self):
        spec = TestSimulateExactness()._spec("two-choices", "sequential", reps=4)
        assert _result_payloads(simulate(_json_hop(spec)).runs) == _result_payloads(
            simulate(spec).runs
        )

    @settings(max_examples=60, deadline=None)
    @given(
        protocol=st.sampled_from(["two-choices", "voter", "three-majority"]),
        n=st.integers(min_value=2, max_value=10**7),
        model=st.sampled_from(["sequential", "synchronous", "continuous"]),
        reps=st.integers(min_value=1, max_value=64),
        seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**63 - 1)),
        params=st.dictionaries(
            st.text(st.characters(codec="ascii", categories=["L", "N"]), min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(10**9), max_value=10**9),
                st.floats(allow_nan=False, allow_infinity=False, width=64),
                st.booleans(),
                st.text(max_size=12),
            ),
            max_size=4,
        ),
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=10**9)),
        faults=st.lists(
            st.fixed_dictionaries(
                {
                    "name": st.sampled_from(["loss", "stubborn", "byzantine"]),
                    "params": st.dictionaries(
                        st.sampled_from(["p", "fraction", "fault_seed", "color"]),
                        st.one_of(
                            st.integers(min_value=0, max_value=10**6),
                            st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
                        ),
                        max_size=2,
                    ),
                }
            ),
            max_size=2,
        ),
    )
    def test_to_dict_json_from_dict_is_identity(self, protocol, n, model, reps, seed, params, budget, faults):
        """Property: any constructible spec survives the JSON hop unchanged
        (registry validation of the params happens at run time, so the
        serialization layer must carry arbitrary JSON-able dicts)."""
        kwargs = {}
        if budget is not None:
            if model == "continuous":
                kwargs["max_time"] = float(budget)
            else:
                kwargs["max_steps"] = budget
        if faults and model != "synchronous":
            kwargs["faults"] = faults
        spec = SimulationSpec(
            protocol=protocol,
            n=n,
            model=model,
            initial="theorem-1-1-gap",
            initial_params=params,
            reps=reps,
            seed=seed,
            **kwargs,
        )
        assert _json_hop(spec) == spec

    NEW_ENTRY_SPECS = [
        SimulationSpec(
            protocol="two-choices",
            n=150,
            topology="dynamic-ring",
            topology_params={"churn_rate": 0.2, "epoch_ticks": 75},
            initial="two-colors",
            initial_params={"gap": 30},
            reps=2,
            seed=9,
            max_steps=4000,
        ),
        SimulationSpec(
            protocol="three-majority",
            n=120,
            initial="zipf-sampled",
            initial_params={"k": 6, "alpha": 1.0, "init_seed": 4},
            faults=[{"name": "stubborn", "params": {"fraction": 0.1, "fault_seed": 2}}],
            reps=2,
            seed=9,
            max_steps=4000,
        ),
        SimulationSpec(
            protocol="two-choices",
            n=100,
            faults=[
                {"name": "loss", "params": {"p": 0.3}},
                {"name": "byzantine", "params": {"fraction": 0.1}},
            ],
            initial="two-colors",
            initial_params={"gap": 20},
            seed=9,
            max_steps=2000,
        ),
    ]

    @pytest.mark.parametrize(
        "spec",
        NEW_ENTRY_SPECS,
        ids=["dynamic-ring", "zipf+stubborn", "loss+byzantine"],
    )
    def test_json_hop_preserves_new_registry_entries(self, spec):
        """PR-10 registry entries (fault stacks, churned topologies,
        sampled Zipf initials) must stay cacheable: simulate identically
        after a real JSON hop."""
        hopped = _json_hop(spec)
        assert hopped == spec
        assert _result_payloads(simulate(hopped).runs) == _result_payloads(simulate(spec).runs)

    def test_result_payload_survives_json_hop(self):
        """SimulationResult payloads (what the cache stores) round-trip too."""
        from repro.api import SimulationResult

        spec = TestSimulateExactness()._spec("two-choices", "sequential", reps=3)
        payload = simulate(spec).to_dict()
        hopped = SimulationResult.from_dict(json.loads(json.dumps(payload)))
        assert hopped.to_dict() == payload


class TestSimulateSurface:
    def test_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="SimulationSpec"):
            simulate({"protocol": "voter", "n": 10})

    def test_sparse_topology_routes_by_size_crossover(self):
        # Below the dispatch crossover the zip-apply hooks engine wins
        # on sparse topologies; the hazard-batched engine takes over
        # from SPARSE_SEQUENTIAL_CROSSOVER nodes (see engine/dispatch).
        spec = SimulationSpec(
            protocol="voter",
            n=32,
            topology="ring",
            model="sequential",
            initial="balanced",
            initial_params={"k": 2},
            reps=2,
            seed=5,
            max_steps=3000,
        )
        sim = simulate(spec)
        assert sim.engine == "SequentialEngine"
        assert sim.reps == 2

    def test_sparse_synchronous_uses_agent_realisation(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=16,
            topology="hypercube",
            model="synchronous",
            initial="balanced",
            initial_params={"k": 2},
            seed=5,
            max_steps=200,
        )
        assert simulate(spec).engine == "SynchronousEngine"

    def test_delay_model_routes_event_queue_engine(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=64,
            model="continuous",
            delay="exponential",
            delay_params={"rate": 1.0},
            initial="two-colors",
            initial_params={"gap": 20},
            seed=5,
            max_time=3.0,
        )
        assert simulate(spec).engine == "ContinuousEngine"

    def test_stop_criterion_applies(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=500,
            stop="near-consensus",
            stop_params={"epsilon": 0.2},
            initial="two-colors",
            initial_params={"gap": 100},
            seed=5,
        )
        run = simulate(spec).runs[0]
        assert run.converged
        assert run.final.counts[0] >= 0.8 * 500

    def test_resolve_exposes_components(self):
        spec = SimulationSpec(protocol="two-choices", n=100, seed=1)
        resolved = resolve(spec)
        assert resolved.topology.n == 100
        assert resolved.initial.n == 100
        assert type(resolved.engine).__name__ == "CountsSequentialEngine"

    def test_result_to_dict_round_trips_spec(self):
        spec = SimulationSpec(protocol="voter", n=200, reps=2, seed=3)
        payload = simulate(spec).to_dict()
        assert SimulationSpec.from_dict(payload["spec"]) == spec
        assert payload["summary"]["reps"] == 2
        assert len(payload["runs"]) == 2

    def test_sweep_rejects_initial_on_object_path(self):
        from repro.protocols.two_choices import TwoChoicesSequential
        from repro.workloads.sweeps import convergence_time_sweep

        with pytest.raises(ConfigurationError, match="spec path only"):
            convergence_time_sweep(
                TwoChoicesSequential(), [100], reps=2, initial="two-colors",
                initial_params={"gap": 20},
            )
        with pytest.raises(ConfigurationError, match="spec path only"):
            convergence_time_sweep(
                "two-choices", [100], reps=2, initial="two-colors",
                initial_params={"gap": 20}, make_config=lambda n: None,
            )

    def test_sweep_spec_path_honours_initial(self):
        from repro.workloads.sweeps import convergence_time_sweep

        out = convergence_time_sweep(
            "two-choices", [200], reps=2, seed=3,
            initial="two-colors", initial_params={"gap": 100},
        )
        assert out[200][0].initial.counts == (150, 50)

    def test_summary_statistics(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=400,
            reps=4,
            seed=11,
            initial="two-colors",
            initial_params={"gap": 100},
        )
        sim = simulate(spec)
        summary = sim.summary()
        assert summary["converged"] == 4
        assert summary["min_parallel_time"] <= summary["mean_parallel_time"] <= summary["max_parallel_time"]
        assert sim.convergence_times() == [r.parallel_time for r in sim.runs]

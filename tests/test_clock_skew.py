"""Tests for the ClockSkew robustness extension."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.protocols.async_plurality import AsyncPluralityConsensus, ClockSkew
from repro.workloads.initial import multiplicative_bias


class TestClockSkewConfig:
    def test_defaults_uniform(self):
        skew = ClockSkew()
        assert skew.is_uniform
        assert skew.total_rate(100) == 100

    def test_total_rate(self):
        skew = ClockSkew(fraction=0.1, rate=0.5)
        # 10 nodes at rate 0.5 + 90 at rate 1.
        assert skew.total_rate(100) == pytest.approx(95.0)

    def test_uniform_when_rate_one(self):
        assert ClockSkew(fraction=0.5, rate=1.0).is_uniform

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockSkew(fraction=1.0)
        with pytest.raises(ConfigurationError):
            ClockSkew(fraction=-0.1)
        with pytest.raises(ConfigurationError):
            ClockSkew(fraction=0.1, rate=0.0)

    def test_fast_nodes_allowed(self):
        skew = ClockSkew(fraction=0.2, rate=3.0)
        assert skew.total_rate(100) == pytest.approx(140.0)


class TestSkewedRuns:
    def test_no_skew_equals_default_path(self):
        config = multiplicative_bias(400, 4, 2.0)
        protocol = AsyncPluralityConsensus()
        plain = protocol.run(config, seed=5)
        with_noop_skew = protocol.run(config, seed=5, skew=ClockSkew())
        assert plain.rounds == with_noop_skew.rounds
        assert plain.final.counts == with_noop_skew.final.counts

    def test_small_skew_still_converges(self):
        config = multiplicative_bias(800, 4, 2.0)
        result = AsyncPluralityConsensus().run(config, seed=9, skew=ClockSkew(0.05, 0.3))
        assert result.converged
        assert result.winner == 0

    def test_skew_slows_parallel_time(self):
        """Slow clocks are waited for: mean consensus time grows."""
        config = multiplicative_bias(600, 4, 2.0)
        protocol = AsyncPluralityConsensus()
        base = np.mean([protocol.run(config, seed=s).parallel_time for s in range(3)])
        skewed = np.mean(
            [
                protocol.run(config, seed=s, skew=ClockSkew(0.25, 0.3)).parallel_time
                for s in range(3)
            ]
        )
        assert skewed > base

    def test_mildly_fast_minority_harmless(self):
        """Fast clocks up to ~1.5x are pulled back by the Sync Gadget
        during part one and still finish the endgame late enough."""
        config = multiplicative_bias(500, 4, 2.0)
        wins = 0
        for seed in range(4):
            result = AsyncPluralityConsensus().run(config, seed=seed, skew=ClockSkew(0.1, 1.4))
            wins += int(result.converged and result.winner == 0)
        assert wins >= 3

    def test_very_fast_minority_can_terminate_prematurely(self):
        """A genuinely fast minority (3x) races through the tick-counted
        endgame and freezes *before* global consensus — a real limitation
        of tick-based termination outside the paper's unit-rate model
        (slow nodes are safe because everyone simply waits; fast nodes
        are not).  This test pins the observed behaviour so a future
        change to termination handling is noticed."""
        config = multiplicative_bias(500, 4, 2.0)
        outcomes = [
            AsyncPluralityConsensus().run(config, seed=seed, skew=ClockSkew(0.1, 3.0)).converged
            for seed in range(5)
        ]
        assert not all(outcomes)

    def test_population_conserved_under_skew(self):
        config = multiplicative_bias(500, 6, 1.5)
        result = AsyncPluralityConsensus().run(
            config, seed=4, skew=ClockSkew(0.2, 0.5), stop_at_consensus=False
        )
        assert sum(result.final.counts) == 500

"""Tests for the baseline protocols: Voter, 3-Majority, Undecided-State."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.state import NodeArrayState
from repro.engine.counts import CountsEngine
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.three_majority import (
    ThreeMajorityCounts,
    ThreeMajoritySequential,
    ThreeMajoritySynchronous,
    _majority_of_three,
)
from repro.protocols.undecided_state import (
    UndecidedStateCounts,
    UndecidedStateSequential,
    UndecidedStateSynchronous,
)
from repro.protocols.voter import VoterCounts, VoterSequential, VoterSynchronous


class TestVoter:
    def test_sequential_always_adopts(self, rng, small_clique):
        protocol = VoterSequential()
        state = NodeArrayState(colors=np.array([0] + [1] * 15), k=2)
        protocol.tick_apply(state, 0, np.array([1]))
        assert state.colors[0] == 1

    def test_counts_conserves_population(self, rng):
        protocol = VoterCounts()
        counts = protocol.init_counts(ColorConfiguration([300, 200]))
        for _ in range(30):
            counts = protocol.step(counts, rng)
            assert counts.sum() == 500

    def test_counts_is_fair_lottery(self):
        """P(colour j wins) ~ c_j / n — voter does NOT amplify bias."""
        engine = CountsEngine(VoterCounts())
        config = ColorConfiguration([60, 40])
        wins = 0
        trials = 120
        for seed in range(trials):
            result = engine.run(config, seed=seed, max_rounds=20_000)
            if result.converged and result.winner == 0:
                wins += 1
        rate = wins / trials
        # 0.6 +- 5 sigma binomial band.
        assert abs(rate - 0.6) < 5 * np.sqrt(0.6 * 0.4 / trials)

    def test_synchronous_round(self, rng):
        protocol = VoterSynchronous()
        state = NodeArrayState(colors=np.ones(30, dtype=np.int64), k=2)
        protocol.round_update(state, CompleteGraph(30), rng)
        assert (state.colors == 1).all()


class TestThreeMajority:
    def test_majority_helper(self):
        a = np.array([0, 0, 1, 2])
        b = np.array([0, 1, 1, 0])
        c = np.array([1, 1, 1, 2])
        # all-distinct case (last column) keeps the first sample... but
        # here b==c for column 3? No: b=0, c=2 distinct -> first sample 2.
        assert _majority_of_three(a, b, c).tolist() == [0, 1, 1, 2]

    def test_sequential_majority_pair_beats_first(self):
        protocol = ThreeMajoritySequential()
        state = NodeArrayState(colors=np.array([0, 1, 1, 2]), k=3)
        protocol.tick_apply(state, 0, np.array([2, 1, 1]))
        assert state.colors[0] == 1

    def test_sequential_all_distinct_takes_first(self):
        protocol = ThreeMajoritySequential()
        state = NodeArrayState(colors=np.array([0, 1, 1, 2]), k=3)
        protocol.tick_apply(state, 0, np.array([2, 1, 0]))
        assert state.colors[0] == 2

    def test_counts_conserves_and_converges(self, rng):
        protocol = ThreeMajorityCounts()
        counts = protocol.init_counts(ColorConfiguration([700, 200, 100]))
        for _ in range(25):
            counts = protocol.step(counts, rng)
            assert counts.sum() == 1000
        engine = CountsEngine(protocol)
        result = engine.run(ColorConfiguration([700, 200, 100]), seed=5)
        assert result.converged
        assert result.winner == 0

    def test_counts_adoption_probabilities_sum_to_one(self):
        """The per-group adopt distribution is a probability vector."""
        counts = np.array([500.0, 300.0, 200.0])
        n = counts.sum()
        q = counts.copy()
        q[0] -= 1
        q /= n - 1
        s2 = float(np.sum(q * q))
        adopt = q**3 + 3 * q**2 * (1 - q) + q * ((1 - q) ** 2 - (s2 - q**2))
        assert adopt.sum() == pytest.approx(1.0, abs=1e-12)

    def test_synchronous_consensus_absorbing(self, rng):
        protocol = ThreeMajoritySynchronous()
        state = NodeArrayState(colors=np.zeros(40, dtype=np.int64), k=2)
        protocol.round_update(state, CompleteGraph(40), rng)
        assert (state.colors == 0).all()


class TestUndecidedState:
    def test_state_has_extra_label(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 1, 1]), k=2)
        assert state.k == 3  # colours 0,1 plus undecided=2

    def test_conflict_makes_undecided(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 1, 1]), k=2)
        protocol.tick_apply(state, 0, np.array([1]))
        assert state.colors[0] == 2

    def test_same_color_keeps(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 0, 1]), k=2)
        protocol.tick_apply(state, 0, np.array([0]))
        assert state.colors[0] == 0

    def test_undecided_adopts_decided(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 1, 1]), k=2)
        state.colors[0] = 2  # undecided
        protocol.tick_apply(state, 0, np.array([1]))
        assert state.colors[0] == 1

    def test_undecided_ignores_undecided(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 1, 1]), k=2)
        state.colors[0] = 2
        state.colors[1] = 2
        protocol.tick_apply(state, 0, np.array([2]))
        assert state.colors[0] == 2

    def test_decided_ignores_undecided_sample(self):
        protocol = UndecidedStateSequential()
        state = protocol.make_state(np.array([0, 1, 1]), k=2)
        state.colors[1] = 2
        protocol.tick_apply(state, 0, np.array([2]))
        assert state.colors[0] == 0

    def test_counts_reports_k_plus_one_buckets(self, rng):
        protocol = UndecidedStateCounts()
        counts = protocol.init_counts(ColorConfiguration([60, 40]))
        assert counts.tolist() == [60, 40, 0]
        stepped = protocol.step(counts, rng)
        assert stepped.sum() == 100
        assert stepped.size == 3

    def test_counts_converges_with_bias(self):
        engine = CountsEngine(UndecidedStateCounts())
        result = engine.run(ColorConfiguration([800, 200]), seed=4, max_rounds=5_000)
        assert result.converged
        assert result.winner == 0
        assert result.final.counts[-1] == 0  # no undecided mass at the end

    def test_sequential_full_run(self):
        engine = SequentialEngine(UndecidedStateSequential(), CompleteGraph(150))
        result = engine.run(ColorConfiguration([120, 30]), seed=6)
        assert result.converged
        assert result.winner == 0

    def test_synchronous_round_conserves(self, rng):
        protocol = UndecidedStateSynchronous()
        state = protocol.make_state(np.array([0] * 25 + [1] * 15), k=2)
        protocol.round_update(state, CompleteGraph(40), rng)
        assert state.colors.size == 40
        assert set(np.unique(state.colors)) <= {0, 1, 2}

    def test_absorbed_detection(self, rng):
        protocol = UndecidedStateCounts()
        assert protocol.is_absorbed(np.array([100, 0, 0]))
        assert not protocol.is_absorbed(np.array([99, 0, 1]))
        assert protocol.is_absorbed(np.array([0, 0, 100]))  # all-undecided trap

"""Deeper property-based tests on mathematical invariants.

These pin down structural facts the experiments rely on implicitly:
the mean-field leader never shrinks, theory predictions are monotone in
their arguments, traces conserve population, and the schedule's action
layout is permutation-free (each slot has exactly one meaning).
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import theory
from repro.analysis.meanfield import two_choices_map, undecided_state_map
from repro.core.colors import ColorConfiguration
from repro.engine.counts import CountsEngine
from repro.protocols.schedule import PhaseSchedule
from repro.protocols.two_choices import TwoChoicesCounts
from repro.workloads.initial import additive_gap, multiplicative_bias


def _simplex(draw_values):
    values = np.array(draw_values, dtype=float) + 1e-9
    return values / values.sum()


@settings(max_examples=80, deadline=None)
@given(raw=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=10))
def test_mean_field_leader_never_shrinks(raw):
    """p1' - p1 = p1 (p1 - S2) >= 0 because S2 <= p1: under Two-Choices
    the (current) largest fraction is non-decreasing in expectation."""
    assume(sum(raw) > 0)
    p = _simplex(raw)
    leader = int(np.argmax(p))
    out = two_choices_map(p)
    assert out[leader] >= p[leader] - 1e-12


@settings(max_examples=80, deadline=None)
@given(raw=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=8))
def test_usd_map_stays_on_extended_simplex(raw):
    assume(sum(raw) > 0)
    p = _simplex(raw)
    out = undecided_state_map(p)
    assert out.sum() == pytest.approx(1.0, abs=1e-9)
    assert (out >= -1e-12).all()
    # iterating keeps it there
    again = undecided_state_map(out)
    assert again.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=16, max_value=10**8),
    c1_fraction=st.floats(min_value=0.01, max_value=1.0),
)
def test_theory_two_choices_monotone_in_c1(n, c1_fraction):
    """Fewer supporters -> more predicted rounds, always."""
    c1 = max(1, int(c1_fraction * n))
    smaller_c1 = max(1, c1 // 2)
    assert theory.two_choices_rounds(n, smaller_c1) >= theory.two_choices_rounds(n, c1)
    assert theory.two_choices_lower_bound(n, smaller_c1) >= theory.two_choices_lower_bound(n, c1)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=4, max_value=10**9))
def test_theory_thresholds_ordered(n):
    """The paper's three bias scales are strictly ordered for n >= 4:
    sqrt(n) < sqrt(n log n) < sqrt(n) log^{3/2} n."""
    assert theory.critical_gap(n) < theory.two_choices_required_gap(n)
    assert theory.two_choices_required_gap(n) < theory.one_extra_bit_required_gap(n)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=10**7))
def test_schedule_slots_partition(n):
    """Every phase's slot counts add up exactly to the phase length."""
    schedule = PhaseSchedule.compile(n)
    actions = schedule.actions[: schedule.phase_length]
    total = actions.size
    counted = sum(int((actions == code).sum()) for code in range(6))
    assert counted == total


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=20, max_value=5_000),
    k=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_counts_run_ends_in_valid_state(n, k, seed):
    """Any biased workload through the counts engine ends with the
    population conserved and, on convergence, a single colour."""
    assume(n >= 4 * k)
    config = multiplicative_bias(n, k, 1.5)
    result = CountsEngine(TwoChoicesCounts()).run(config, seed=seed, max_rounds=2_000)
    assert sum(result.final.counts) == n
    if result.converged:
        assert result.final.is_consensus()
        assert result.winner is not None


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=100_000),
    k=st.integers(min_value=2, max_value=10),
    gap_fraction=st.floats(min_value=0.0, max_value=0.4),
)
def test_additive_gap_structure(n, k, gap_fraction):
    """additive_gap always realises >= the requested gap with balanced
    runners-up, or raises cleanly."""
    from repro.core.exceptions import ConfigurationError

    assume(n >= 2 * k)
    gap = int(gap_fraction * n)
    try:
        config = additive_gap(n, k, gap)
    except ConfigurationError:
        return  # infeasible combination rejected, which is fine
    assert config.n == n
    assert config.additive_bias >= gap
    runners = config.counts[1:]
    if runners:
        assert max(runners) == min(runners)

"""Concurrent ``ResultCache`` access: the atomic-write contract.

The cache's concurrency story (ISSUE 8 satellite): writes go to a
temp file in the destination directory and land via ``os.replace``, so
two processes racing on one key simply overwrite each other with
identical bytes, and a reader racing a writer sees either a miss or a
complete, validated payload — never a torn or mismatched one.  These
tests pin that contract: the rename-based commit, the no-partial-reads
guarantee under a real multi-process race, and the absence of leftover
temp files.
"""

import json
import multiprocessing
import os

import pytest

from repro.api import ResultCache, SimulationSpec, simulate, spec_key
from repro.core.exceptions import ExperimentError

WRITES_PER_PROCESS = 60


def _spec(n=80, seed=9):
    return SimulationSpec(
        protocol="two-choices",
        n=n,
        initial="two-colors",
        initial_params={"gap": n // 5},
        reps=1,
        seed=seed,
        max_steps=40 * n,
    )


def _writer_process(directory, spec_payload, result_payload, start, writes):
    """Re-put one precomputed payload *writes* times (separate process)."""
    cache = ResultCache(directory)
    spec = SimulationSpec.from_dict(spec_payload)
    start.wait()
    for _ in range(writes):
        cache.put(spec, json.loads(result_payload))


@pytest.fixture(scope="module")
def payload():
    spec = _spec()
    return spec, simulate(spec).to_dict()


class TestConcurrentAccess:
    def test_two_processes_racing_one_key(self, tmp_path, payload):
        """Two writers + an in-process reader on one key: no torn reads.

        The reader uses ``memo_size=0`` so every ``get_payload`` is a
        real file read; a torn or mismatched payload would surface as a
        JSON decode miss (read as ``None`` mid-campaign — acceptable
        only before the first commit) or an ``ExperimentError``.  After
        the first observed hit, every read must hit: ``os.replace`` is
        atomic, so the key never transitions back to missing.
        """
        spec, result_payload = payload
        encoded = json.dumps(result_payload)
        ctx = multiprocessing.get_context("spawn")
        start = ctx.Event()
        writers = [
            ctx.Process(
                target=_writer_process,
                args=(str(tmp_path), spec.to_dict(), encoded, start, WRITES_PER_PROCESS),
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        reader = ResultCache(tmp_path)
        start.set()
        seen_hit = False
        hits = 0
        try:
            while any(proc.is_alive() for proc in writers):
                got = reader.get_payload(spec)  # raises on mismatch: test fails
                if got is not None:
                    assert got["spec"] == spec.to_dict()
                    assert len(got["runs"]) == 1
                    seen_hit = True
                    hits += 1
                else:
                    assert not seen_hit, "key vanished after a successful read"
        finally:
            for proc in writers:
                proc.join(60)
                assert proc.exitcode == 0
        final = reader.get_payload(spec)
        assert final is not None and final["spec"] == spec.to_dict()
        assert hits > 0

    def test_no_temp_files_left_behind(self, tmp_path, payload):
        spec, result_payload = payload
        cache = ResultCache(tmp_path)
        for _ in range(5):
            cache.put(spec, dict(result_payload))
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
        assert leftovers == []

    def test_commit_goes_through_atomic_rename(self, tmp_path, payload, monkeypatch):
        """Pin the mechanism, not just the outcome: one ``os.replace``
        from a same-directory temp file per put, and no direct writes
        to the destination path."""
        spec, result_payload = payload
        cache = ResultCache(tmp_path)
        destination = cache.path_for(spec_key(spec))
        replaces = []
        real_replace = os.replace

        def recording_replace(src, dst):
            replaces.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", recording_replace)
        cache.put(spec, dict(result_payload))
        assert len(replaces) == 1
        src, dst = replaces[0]
        assert dst == str(destination)
        assert os.path.dirname(src) == str(destination.parent)
        assert src != dst

    def test_failed_write_leaves_prior_entry_intact(self, tmp_path, payload, monkeypatch):
        """A crash mid-commit must not take out the committed entry."""
        spec, result_payload = payload
        cache = ResultCache(tmp_path)
        cache.put(spec, dict(result_payload))

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            cache.put(spec, dict(result_payload))
        monkeypatch.undo()
        got = cache.get_payload(spec)
        assert got is not None and got["spec"] == spec.to_dict()
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_interleaved_readers_share_one_memo_safely(self, tmp_path, payload):
        """Threaded readers on a memoized cache: one shared payload."""
        import threading

        spec, result_payload = payload
        cache = ResultCache(tmp_path, memo_size=8)
        cache.put(spec, dict(result_payload))
        outputs = [None] * 8

        def read(index):
            outputs[index] = cache.get_payload(spec)

        threads = [threading.Thread(target=read, args=(i,)) for i in range(len(outputs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert all(out is not None for out in outputs)
        # All readers share the single memoized dict (read-only contract).
        assert len({id(out) for out in outputs}) == 1

    def test_corrupt_entry_is_never_served(self, tmp_path, payload):
        spec, result_payload = payload
        cache = ResultCache(tmp_path)
        path = cache.put(spec, dict(result_payload))
        stored = json.loads(path.read_text())
        stored["result"]["spec"]["seed"] = 12345  # simulated collision
        path.write_text(json.dumps(stored))
        with pytest.raises(ExperimentError):
            cache.get_payload(spec)

    def test_truncated_entry_reads_as_miss(self, tmp_path, payload):
        """A half-written file (no atomic rename) would look like this;
        the reader treats it as a miss instead of serving garbage."""
        spec, result_payload = payload
        cache = ResultCache(tmp_path)
        path = cache.put(spec, dict(result_payload))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get_payload(spec) is None

"""Tests for repro.analysis.statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import (
    SuccessEstimate,
    bootstrap_mean_ci,
    estimate_success,
    fit_log_slope,
    fit_power_law,
    summarize,
    wilson_interval,
)
from repro.core.exceptions import ConfigurationError


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_extreme_counts(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low < 1.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(800, 1000)
        wide = wilson_interval(8, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(11, 10)

    def test_coverage_calibration(self):
        """~95% of Wilson intervals cover the true p."""
        rng = np.random.default_rng(0)
        p, trials, reps = 0.3, 60, 800
        covered = 0
        for _ in range(reps):
            successes = rng.binomial(trials, p)
            low, high = wilson_interval(int(successes), trials)
            covered += int(low <= p <= high)
        assert covered / reps >= 0.90


class TestEstimateSuccess:
    def test_summary(self):
        estimate = estimate_success([True] * 9 + [False])
        assert estimate.successes == 9
        assert estimate.trials == 10
        assert estimate.rate == 0.9
        assert estimate.low < 0.9 < estimate.high

    def test_excludes(self):
        estimate = estimate_success([True] * 99 + [False])
        assert estimate.excludes(0.5)
        assert not estimate.excludes(0.99)


class TestPowerLawFit:
    def test_exact_recovery(self):
        x = [1.0, 2.0, 4.0, 8.0]
        y = [3.0 * v**1.5 for v in x]
        alpha, constant = fit_power_law(x, y)
        assert alpha == pytest.approx(1.5)
        assert constant == pytest.approx(3.0)

    def test_flat_line(self):
        alpha, _ = fit_power_law([1, 10, 100], [5, 5, 5])
        assert alpha == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1], [2])
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ConfigurationError):
            fit_power_law([1, 2], [1, 2, 3])


class TestLogSlope:
    def test_exact_recovery(self):
        x = [np.e**1, np.e**2, np.e**3]
        y = [2.0 * 1 + 5, 2.0 * 2 + 5, 2.0 * 3 + 5]
        assert fit_log_slope(x, y) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_log_slope([0, 1], [1, 2])


class TestBootstrap:
    def test_mean_inside_interval(self):
        values = list(np.random.default_rng(1).normal(10, 2, size=60))
        mean, low, high = bootstrap_mean_ci(values, seed=2)
        assert low <= mean <= high
        assert mean == pytest.approx(np.mean(values))

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_mean_ci(values, seed=7) == bootstrap_mean_ci(values, seed=7)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_ci([])


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["median"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


@settings(max_examples=60, deadline=None)
@given(
    successes=st.integers(min_value=0, max_value=200),
    trials=st.integers(min_value=1, max_value=200),
)
def test_property_wilson_bounds(successes, trials):
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials)
    assert 0.0 <= low <= high <= 1.0
    assert low <= successes / trials <= high

"""Tests for the OneExtraBit protocol (Theorem 1.2)."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine.counts import CountsEngine
from repro.engine.synchronous import SynchronousEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.one_extra_bit import (
    OneExtraBitCounts,
    OneExtraBitCountsState,
    OneExtraBitSynchronous,
    default_bp_rounds,
)


class TestDefaultBpRounds:
    def test_grows_with_k(self):
        assert default_bp_rounds(10_000, 64) > default_bp_rounds(10_000, 2)

    def test_grows_slowly_with_n(self):
        assert default_bp_rounds(10**9, 2) <= default_bp_rounds(10**3, 2) + 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            default_bp_rounds(1, 2)
        with pytest.raises(ConfigurationError):
            default_bp_rounds(100, 0)

    def test_respects_extra(self):
        assert default_bp_rounds(1000, 4, extra=5) == default_bp_rounds(1000, 4, extra=2) + 3


class TestAgentBased:
    def test_state_has_bit_and_round_index(self):
        protocol = OneExtraBitSynchronous()
        state = protocol.make_state(np.array([0, 1, 1, 0]), k=2)
        assert not state.bit.any()
        assert state.round_index == 0

    def test_tc_round_sets_bits_on_agreement(self, rng):
        protocol = OneExtraBitSynchronous(bp_rounds=3)
        # Unanimous population: both samples always agree.
        state = protocol.make_state(np.zeros(30, dtype=np.int64), k=2)
        protocol.round_update(state, CompleteGraph(30), rng)
        assert state.bit.all()
        assert state.round_index == 1

    def test_bp_round_spreads_bits(self, rng):
        protocol = OneExtraBitSynchronous(bp_rounds=3)
        state = protocol.make_state(np.array([0] * 20 + [1] * 20), k=2)
        state.round_index = 1  # force a bit-propagation round
        state.bit[:5] = True
        before = state.bit.sum()
        protocol.round_update(state, CompleteGraph(40), rng)
        assert state.bit.sum() >= before  # bits never disappear during BP

    def test_bp_adopters_copy_bit_holder_colors(self, rng):
        protocol = OneExtraBitSynchronous(bp_rounds=3)
        state = protocol.make_state(np.array([0] * 20 + [1] * 20), k=2)
        state.round_index = 1
        state.bit[:20] = True  # exactly the colour-0 nodes carry the bit
        protocol.round_update(state, CompleteGraph(40), rng)
        adopters = state.bit[20:]
        assert (state.colors[20:][adopters] == 0).all()

    def test_full_run_converges(self):
        engine = SynchronousEngine(OneExtraBitSynchronous(), CompleteGraph(400))
        result = engine.run(ColorConfiguration([250, 100, 50]), seed=3, max_rounds=500)
        assert result.converged
        assert result.winner == 0

    def test_bp_rounds_validation(self):
        with pytest.raises(ConfigurationError):
            OneExtraBitSynchronous(bp_rounds=0)


class TestCountsBased:
    def test_init_state(self):
        protocol = OneExtraBitCounts()
        state = protocol.init_counts(ColorConfiguration([70, 30]))
        assert state.bit_set.tolist() == [0, 0]
        assert state.bit_unset.tolist() == [70, 30]
        assert state.round_index == 0

    def test_population_conserved_over_phases(self, rng):
        protocol = OneExtraBitCounts(bp_rounds=4)
        state = protocol.init_counts(ColorConfiguration([600, 300, 100]))
        for _ in range(25):
            state = protocol.step(state, rng)
            assert int(state.total.sum()) == 1000
            assert (state.bit_set >= 0).all() and (state.bit_unset >= 0).all()

    def test_tc_step_bit_count_concentrates(self, rng):
        """After one TC round, bit-set colour-1 mass ~ c1^2/n (the
        concentration Section 2 states)."""
        protocol = OneExtraBitCounts(bp_rounds=4)
        n, c1 = 100_000, 60_000
        state = protocol.init_counts(ColorConfiguration([c1, n - c1]))
        samples = []
        for _ in range(30):
            stepped = protocol._two_choices_step(state, rng)
            samples.append(int(stepped.bit_set[0]))
        expected = c1**2 / n
        assert np.mean(samples) == pytest.approx(expected, rel=0.02)

    def test_bp_step_grows_bits(self, rng):
        protocol = OneExtraBitCounts(bp_rounds=4)
        state = OneExtraBitCountsState(
            bit_set=np.array([100, 20]),
            bit_unset=np.array([500, 380]),
            round_index=1,
        )
        stepped = protocol._bit_propagation_step(state, rng)
        assert int(stepped.bit_set.sum()) >= 120
        assert int(stepped.total.sum()) == 1000

    def test_full_run_converges_faster_than_two_choices_at_large_k(self):
        """The headline of Theorem 1.2 at a small scale."""
        from repro.protocols.two_choices import TwoChoicesCounts
        from repro.workloads.initial import theorem_1_1_gap

        config = theorem_1_1_gap(200_000, 64, z=1.0)
        tc = CountsEngine(TwoChoicesCounts()).run(config, seed=1)
        oeb = CountsEngine(OneExtraBitCounts()).run(config, seed=1)
        assert tc.converged and oeb.converged
        assert tc.winner == 0 and oeb.winner == 0

    def test_agrees_with_agent_based_tc_round(self):
        """One TC round: counts-level and agent-level bit totals agree."""
        n = 500
        trials = 200
        agent_rng = np.random.default_rng(11)
        counts_rng = np.random.default_rng(12)
        graph = CompleteGraph(n)
        agent = OneExtraBitSynchronous(bp_rounds=3)
        counts = OneExtraBitCounts(bp_rounds=3)
        agent_bits, counts_bits = [], []
        colors = np.array([0] * 300 + [1] * 200)
        for _ in range(trials):
            state = agent.make_state(colors.copy(), k=2)
            agent.round_update(state, graph, agent_rng)
            agent_bits.append(int(state.bit.sum()))
            cstate = counts.init_counts(ColorConfiguration([300, 200]))
            cstate = counts.step(cstate, counts_rng)
            counts_bits.append(int(cstate.bit_set.sum()))
        pooled_sem = np.sqrt((np.var(agent_bits) + np.var(counts_bits)) / trials)
        assert abs(np.mean(agent_bits) - np.mean(counts_bits)) < 4 * pooled_sem + 1e-9

    def test_color_counts_projection(self):
        state = OneExtraBitCountsState(bit_set=np.array([5, 1]), bit_unset=np.array([10, 4]))
        protocol = OneExtraBitCounts()
        assert protocol.color_counts(state).tolist() == [15, 5]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OneExtraBitCounts(bp_rounds=0)

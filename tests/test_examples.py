"""Smoke tests: every example script must run end to end.

Each example accepts a size argument, so the tests run them small; the
assertions check exit status and a recognisable line of output, keeping
the examples honest as the API evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    proc = _run("quickstart.py", "600", "4")
    assert proc.returncode == 0, proc.stderr
    assert "consensus on colour 0" in proc.stdout
    assert "schedule:" in proc.stdout


def test_sensor_swarm():
    proc = _run("sensor_swarm.py", "800", "5")
    assert proc.returncode == 0, proc.stderr
    assert "phased protocol" in proc.stdout
    assert "voter dynamics" in proc.stdout


def test_protocol_faceoff():
    proc = _run("protocol_faceoff.py", "30000")
    assert proc.returncode == 0, proc.stderr
    assert "one-extra-bit" in proc.stdout
    assert "fastest" in proc.stdout


def test_async_synchronizer():
    proc = _run("async_synchronizer.py", "700")
    assert proc.returncode == 0, proc.stderr
    assert "gadget ON" in proc.stdout and "gadget OFF" in proc.stdout


def test_broadcast_anatomy():
    proc = _run("broadcast_anatomy.py", "20000")
    assert proc.returncode == 0, proc.stderr
    assert "push-pull" in proc.stdout


def test_topology_tour():
    proc = _run("topology_tour.py", "256")
    assert proc.returncode == 0, proc.stderr
    assert "hypercube" in proc.stdout
    assert "ring" in proc.stdout

"""Tests for the asynchronous phased protocol (Theorem 1.3)."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.protocols.async_plurality import AsyncPluralityConsensus
from repro.workloads.initial import multiplicative_bias


@pytest.fixture(scope="module")
def converged_run():
    """One shared full run (runs in ~a second)."""
    config = multiplicative_bias(800, 4, 1.8)
    return AsyncPluralityConsensus().run(config, seed=7)


class TestFullRuns:
    def test_converges_to_plurality(self, converged_run):
        assert converged_run.converged
        assert converged_run.winner == 0
        assert converged_run.plurality_preserved

    def test_parallel_time_positive_and_bounded(self, converged_run):
        schedule_total = converged_run.metadata["part_one_length"] + converged_run.metadata["endgame_ticks"]
        assert 0 < converged_run.parallel_time < 3 * schedule_total

    def test_metadata_fields(self, converged_run):
        metadata = converged_run.metadata
        for key in (
            "delta",
            "phases",
            "part_one_length",
            "endgame_ticks",
            "sync_enabled",
            "first_consensus_parallel_time",
            "consensus_before_first_termination",
            "spread_trace",
        ):
            assert key in metadata
        assert metadata["sync_enabled"] is True

    def test_spread_trace_recorded(self, converged_run):
        trace = converged_run.metadata["spread_trace"]
        assert len(trace) > 3
        entry = trace[0]
        assert {"time", "spread", "spread_core", "poor_fraction"} <= set(entry)

    def test_deterministic_given_seed(self):
        config = multiplicative_bias(400, 4, 1.8)
        protocol = AsyncPluralityConsensus()
        a = protocol.run(config, seed=99)
        b = protocol.run(config, seed=99)
        assert a.rounds == b.rounds
        assert a.final.counts == b.final.counts


class TestRunToTermination:
    def test_all_nodes_terminate(self):
        config = multiplicative_bias(400, 4, 2.0)
        result = AsyncPluralityConsensus().run(config, seed=3, stop_at_consensus=False)
        assert result.metadata["terminated_nodes"] == 400
        assert result.metadata["first_termination_parallel_time"] is not None

    def test_consensus_before_first_termination_usually(self):
        config = multiplicative_bias(600, 4, 2.0)
        ok = 0
        for seed in range(5):
            result = AsyncPluralityConsensus().run(config, seed=seed, stop_at_consensus=False)
            if result.metadata["consensus_before_first_termination"]:
                ok += 1
        assert ok >= 4  # w.h.p. claim, small-n slack


class TestVariants:
    def test_sync_disabled_still_converges(self):
        config = multiplicative_bias(600, 4, 2.0)
        result = AsyncPluralityConsensus(sync_enabled=False).run(config, seed=11)
        assert result.converged
        assert result.metadata["sync_enabled"] is False

    def test_explicit_phase_override(self):
        config = multiplicative_bias(400, 2, 2.0)
        protocol = AsyncPluralityConsensus(phases=3)
        assert protocol.schedule_for(400).phases == 3
        result = protocol.run(config, seed=5)
        assert result.metadata["phases"] == 3

    def test_explicit_color_array_input(self):
        colors = np.array([0] * 300 + [1] * 100)
        result = AsyncPluralityConsensus().run(colors, seed=2)
        assert result.initial.counts == (300, 100)
        assert result.converged

    def test_record_trace(self):
        config = multiplicative_bias(400, 4, 2.0)
        result = AsyncPluralityConsensus().run(config, seed=8, record_trace=True)
        assert result.trace is not None
        assert len(result.trace) >= 2
        totals = result.trace.count_matrix().sum(axis=1)
        assert (totals == 400).all()

    def test_tiny_population_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncPluralityConsensus().run(np.array([0]), seed=0)

    def test_budget_exhaustion_is_reported_not_raised(self):
        config = multiplicative_bias(400, 4, 1.2)
        result = AsyncPluralityConsensus().run(config, seed=1, max_parallel_time=3.0)
        assert result.parallel_time <= 3.5
        # far too short to converge
        assert not result.final.is_consensus()


class TestCountsConsistency:
    def test_incremental_counts_match_final_colors(self):
        """The run loop maintains counts incrementally; the reported
        final counts must equal an O(n) recount of the colour state
        (regression guard for the bookkeeping)."""
        config = multiplicative_bias(500, 8, 1.5)
        result = AsyncPluralityConsensus().run(config, seed=21, stop_at_consensus=False)
        assert sum(result.final.counts) == 500
        assert result.final.is_consensus() == result.converged

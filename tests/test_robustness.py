"""Tests for the robustness workload layer (PR-10).

Covers the ``fault_axis`` expansion contract (rate 0 = empty stack),
the campaign builders, the ``phase_map`` / ``critical_rates`` folds,
the seeded Zipf-sampled initials, the serial == process == warm-cache
identity of a small robustness grid, and a miniature
:func:`benchmark_robustness` payload with its warm-replay contract.
"""

import json

import numpy as np
import pytest

from repro.api import INITIALS
from repro.api.campaign import run_campaign
from repro.bench.perf_robustness import benchmark_robustness
from repro.core.colors import zipf_counts
from repro.core.exceptions import ConfigurationError
from repro.core.rng import as_generator
from repro.workloads.robustness import (
    FAULT_KINDS,
    critical_rates,
    fault_axis,
    phase_map,
    robustness_campaign,
    zipf_robustness_campaign,
)


class TestFaultAxis:
    def test_zero_rate_expands_to_empty_stack(self):
        values = fault_axis("stubborn", [0.0, 0.1])
        assert values[0] == []
        assert values[1] == [{"name": "stubborn", "params": {"fraction": 0.1, "fault_seed": 0}}]

    def test_loss_axis_has_no_fault_seed(self):
        values = fault_axis("loss", [0.3], fault_seed=7)
        assert values == [[{"name": "loss", "params": {"p": 0.3}}]]

    def test_adversary_axis_pins_fault_seed(self):
        values = fault_axis("byzantine", [0.2], fault_seed=5)
        assert values == [[{"name": "byzantine", "params": {"fraction": 0.2, "fault_seed": 5}}]]

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError, match="fault rates"):
            fault_axis("loss", [rate])

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            fault_axis("gremlins", [0.1])

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            fault_axis("loss", [])


class TestCampaignBuilders:
    def test_grid_is_rate_outer_bias_inner(self):
        campaign = robustness_campaign(
            "two-choices", "stubborn", [0.0, 0.1], [10, 30, 50], n=80, reps=2
        )
        assert campaign.name == "robustness/two-choices/stubborn"
        assert list(campaign.sweep.axes) == ["faults", "initial_params.gap"]
        assert campaign.size == 6
        specs = [point for point in campaign.points()]
        # Row-major in axis-insertion order: the gap cycles fastest.
        assert [spec.initial_params["gap"] for spec in specs] == [10, 30, 50, 10, 30, 50]
        assert specs[0].faults == () and specs[3].faults != ()

    def test_zipf_campaign_pins_the_draw(self):
        campaign = zipf_robustness_campaign(
            "three-majority", "stubborn", [0.0, 0.1], [0.5, 1.5], n=80, k=4, init_seed=3
        )
        assert campaign.name == "robustness-zipf/three-majority/stubborn"
        assert campaign.base.initial == "zipf-sampled"
        assert campaign.base.initial_params["init_seed"] == 3
        assert campaign.size == 4

    def test_empty_bias_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="gap"):
            robustness_campaign("voter", "loss", [0.1], [])
        with pytest.raises(ConfigurationError, match="exponent"):
            zipf_robustness_campaign("voter", "loss", [0.1], [])


class TestCriticalRates:
    MAP = {
        "rates": [0.0, 0.1, 0.2],
        "biases": [10, 40, 80],
        "consensus_rate": [[1.0, 1.0, 1.0], [0.4, 1.0, 1.0], [0.0, 0.9, 1.0]],
        "plurality_rate": [[1.0, 1.0, 1.0], [0.4, 1.0, 1.0], [0.0, 0.3, 1.0]],
    }

    def test_boundary_is_last_passing_rate(self):
        assert critical_rates(self.MAP) == [0.0, 0.1, 0.2]
        assert critical_rates(self.MAP, stat="consensus_rate") == [0.0, 0.2, 0.2]

    def test_rate_zero_failure_maps_to_none(self):
        payload = dict(self.MAP)
        payload["plurality_rate"] = [[0.2, 1.0, 1.0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0]]
        assert critical_rates(payload)[0] is None

    def test_scan_stops_at_first_failure(self):
        # An isolated passing cell above the boundary must not count.
        payload = dict(self.MAP)
        payload["plurality_rate"] = [[1.0] * 3, [0.1, 1.0, 1.0], [0.9, 1.0, 1.0]]
        assert critical_rates(payload)[0] == 0.0

    def test_threshold_is_inclusive(self):
        payload = dict(self.MAP)
        payload["plurality_rate"] = [[0.5, 1.0, 1.0], [0.49, 1.0, 1.0], [0.0, 1.0, 1.0]]
        assert critical_rates(payload)[0] == 0.0

    def test_unknown_stat_rejected(self):
        with pytest.raises(ConfigurationError, match="stat"):
            critical_rates(self.MAP, stat="winner_rate")


class TestZipfInitials:
    def test_seeded_draw_is_deterministic(self):
        first = zipf_counts(300, 6, alpha=1.0, rng=as_generator(9))
        second = zipf_counts(300, 6, alpha=1.0, rng=as_generator(9))
        assert first == second
        assert sum(first.counts) == 300
        assert first.k == 6

    def test_heavier_tail_concentrates_the_head(self):
        flat = zipf_counts(5000, 8, alpha=0.0, rng=as_generator(1))
        steep = zipf_counts(5000, 8, alpha=2.0, rng=as_generator(1))
        assert steep.counts[0] > flat.counts[0]

    def test_registry_adapter_matches_core_function(self):
        built = INITIALS.build("zipf-sampled", {"k": 6, "alpha": 1.0, "init_seed": 3}, 200)
        assert built == zipf_counts(200, 6, alpha=1.0, rng=as_generator(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="k"):
            zipf_counts(10, 0)
        with pytest.raises(ConfigurationError, match="alpha"):
            zipf_counts(10, 2, alpha=-1.0)


def _tiny_campaign():
    return robustness_campaign(
        "two-choices", "stubborn", [0.0, 0.2], [8, 24], n=60, reps=2, seed=77, max_steps=2400
    )


def _deterministic(result) -> dict:
    payload = result.to_dict()
    payload.pop("execution")
    return payload


class TestPhaseMapFold:
    def test_shape_and_ranges(self):
        result = run_campaign(_tiny_campaign(), executor="serial")
        folded = phase_map(result, [0.0, 0.2], [8, 24])
        assert folded["rates"] == [0.0, 0.2]
        assert folded["biases"] == [8, 24]
        for key in ("consensus_rate", "plurality_rate"):
            matrix = folded[key]
            assert len(matrix) == 2 and all(len(row) == 2 for row in matrix)
            assert all(0.0 <= cell <= 1.0 for row in matrix for cell in row)
        assert json.dumps(folded)  # strictly JSON-serialisable (no NaN)

    def test_size_mismatch_rejected(self):
        result = run_campaign(_tiny_campaign(), executor="serial")
        with pytest.raises(ConfigurationError, match="grid"):
            phase_map(result, [0.0, 0.2], [8])


class TestExecutionIdentity:
    def test_serial_process_and_warm_cache_agree(self, tmp_path):
        campaign = _tiny_campaign()
        cold = run_campaign(campaign, executor="serial", cache=str(tmp_path))
        assert cold.engine_runs == campaign.size
        forked = run_campaign(campaign, executor="process", workers=2)
        warm = run_campaign(campaign, executor="serial", cache=str(tmp_path))
        assert warm.engine_runs == 0
        assert warm.cache_hits == campaign.size
        assert _deterministic(cold) == _deterministic(forked) == _deterministic(warm)


class TestBenchmarkRobustnessMini:
    SCALE = {
        "n": 60,
        "reps": 2,
        "loss_rates": (0.0, 0.4),
        "adversary_rates": (0.0, 0.2),
        "gaps": (8, 20),
        "zipf_rates": (0.0, 0.2),
        "zipf_alphas": (1.0,),
        "zipf_k": 4,
        "max_steps_parallel": 40,
    }

    def test_payload_shape_and_warm_replay(self, tmp_path):
        cold = benchmark_robustness(quick=True, scale=self.SCALE, cache=str(tmp_path))
        # 2 protocols x 3 fault kinds + the zipf leg.
        assert len(cold["grids"]) == 2 * len(FAULT_KINDS) + 1
        assert cold["grids"][-1]["initial"] == "zipf-sampled"
        for grid in cold["grids"]:
            folded = grid["phase_map"]
            assert len(folded["consensus_rate"]) == len(folded["rates"])
            assert len(grid["critical_rates"]) == len(folded["biases"])
        criteria = cold["criteria"]
        assert criteria["degradation_assertable"] is False  # 2 reps < 4
        slugs = [
            f"{grid['protocol']}_{grid['fault']}".replace("-", "_") for grid in cold["grids"][:-1]
        ] + ["zipf_three_majority_stubborn"]
        for slug in slugs:
            assert f"zero_fault_consensus_ok_{slug}" in criteria
            assert f"fault_injection_bites_{slug}" in criteria
        warm = benchmark_robustness(quick=True, scale=self.SCALE, cache=str(tmp_path))
        assert warm["execution"]["engine_runs"] == 0
        assert warm["execution"]["cache_hits"] > 0
        strip = lambda payload: {k: v for k, v in payload.items() if k != "execution"}
        assert json.dumps(strip(cold), sort_keys=True) == json.dumps(strip(warm), sort_keys=True)

"""Tests for repro.graphs.sparse and the networkx adapter."""

import numpy as np
import pytest

from repro.core.exceptions import TopologyError
from repro.graphs.nx_adapter import from_networkx
from repro.graphs.sparse import AdjacencyTopology, erdos_renyi, ring, torus


class TestAdjacencyTopology:
    def test_basic_path_graph(self):
        graph = AdjacencyTopology([[1], [0, 2], [1]])
        assert graph.n == 3
        assert graph.degree(1) == 2
        assert graph.neighbors_of(1).tolist() == [0, 2]

    def test_rejects_isolated_node(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[1], [0], []])

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[1], [5]])

    def test_rejects_single_node(self):
        with pytest.raises(TopologyError):
            AdjacencyTopology([[0]])

    def test_sampling_respects_adjacency(self, rng):
        graph = AdjacencyTopology([[1], [0, 2], [1]])
        for _ in range(100):
            assert graph.sample_neighbor(0, rng) == 1
            assert graph.sample_neighbor(1, rng) in (0, 2)

    def test_sample_neighbors_batch(self, rng):
        graph = ring(10)
        samples = graph.sample_neighbors(0, 200, rng)
        assert set(np.unique(samples)) <= {1, 9}

    def test_sample_neighbors_many(self, rng):
        graph = ring(8)
        nodes = rng.integers(0, 8, size=500)
        samples = graph.sample_neighbors_many(nodes, rng)
        diffs = (samples - nodes) % 8
        assert set(np.unique(diffs)) <= {1, 7}

    def test_not_complete(self):
        assert not ring(5).is_complete()


class TestRing:
    def test_structure(self):
        graph = ring(5)
        assert graph.n == 5
        assert sorted(graph.neighbors_of(0).tolist()) == [1, 4]
        assert all(graph.degree(u) == 2 for u in range(5))

    def test_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestTorus:
    def test_structure(self):
        graph = torus(3, 4)
        assert graph.n == 12
        assert all(graph.degree(u) == 4 for u in range(12))

    def test_wraparound(self):
        graph = torus(3, 3)
        # node 0 = (0,0); neighbours are (2,0)=6, (1,0)=3, (0,2)=2, (0,1)=1
        assert sorted(graph.neighbors_of(0).tolist()) == [1, 2, 3, 6]

    def test_too_small(self):
        with pytest.raises(TopologyError):
            torus(2, 5)


class TestErdosRenyi:
    def test_min_degree_patched(self):
        graph = erdos_renyi(30, 0.01, seed=0, ensure_min_degree=1)
        assert all(graph.degree(u) >= 1 for u in range(30))

    def test_deterministic_given_seed(self):
        a = erdos_renyi(20, 0.2, seed=5)
        b = erdos_renyi(20, 0.2, seed=5)
        assert all((a.neighbors_of(u) == b.neighbors_of(u)).all() for u in range(20))

    def test_dense_p_one_is_complete_graph(self):
        graph = erdos_renyi(10, 1.0, seed=1)
        assert all(graph.degree(u) == 9 for u in range(10))

    def test_invalid_p(self):
        with pytest.raises(TopologyError):
            erdos_renyi(10, 1.5)


class TestNetworkxAdapter:
    def test_round_trip(self):
        nx = pytest.importorskip("networkx")
        graph = from_networkx(nx.path_graph(4))
        assert graph.n == 4
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2

    def test_rejects_directed(self):
        nx = pytest.importorskip("networkx")
        with pytest.raises(TopologyError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_rejects_isolated(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(TopologyError):
            from_networkx(g)

    def test_arbitrary_labels(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph([("a", "b"), ("b", "c")])
        graph = from_networkx(g)
        assert graph.n == 3

"""Tests for the Two-Choices protocol in all three realisations."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.state import NodeArrayState
from repro.engine.counts import CountsEngine
from repro.engine.synchronous import SynchronousEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.two_choices import (
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSynchronous,
)


class TestSequentialRule:
    def test_adopts_on_agreement(self):
        protocol = TwoChoicesSequential()
        state = NodeArrayState(colors=np.array([0, 1, 1]), k=2)
        protocol.tick_apply(state, 0, np.array([1, 1]))
        assert state.colors[0] == 1

    def test_keeps_on_disagreement(self):
        protocol = TwoChoicesSequential()
        state = NodeArrayState(colors=np.array([0, 1, 1]), k=2)
        protocol.tick_apply(state, 0, np.array([0, 1]))
        assert state.colors[0] == 0

    def test_tick_targets_two_samples(self, rng, small_clique):
        protocol = TwoChoicesSequential()
        state = NodeArrayState(colors=np.zeros(16, dtype=np.int64), k=1)
        targets = protocol.tick_targets(state, 3, small_clique, rng)
        assert len(targets) == 2
        assert (targets != 3).all()

    def test_seq_tick_composition(self, rng, small_clique):
        protocol = TwoChoicesSequential()
        # All other nodes share colour 1, so the tick must adopt it.
        colors = np.ones(16, dtype=np.int64)
        colors[5] = 0
        state = NodeArrayState(colors=colors, k=2)
        protocol.seq_tick(state, 5, small_clique, rng)
        assert state.colors[5] == 1


class TestSynchronousRound:
    def test_consensus_is_absorbing(self, rng):
        protocol = TwoChoicesSynchronous()
        state = NodeArrayState(colors=np.ones(50, dtype=np.int64), k=2)
        protocol.round_update(state, CompleteGraph(50), rng)
        assert (state.colors == 1).all()
        assert protocol.is_absorbed(state)

    def test_population_conserved(self, rng):
        protocol = TwoChoicesSynchronous()
        state = NodeArrayState(colors=np.array([0] * 30 + [1] * 20), k=2)
        protocol.round_update(state, CompleteGraph(50), rng)
        assert state.colors.size == 50
        assert set(np.unique(state.colors)) <= {0, 1}


class TestCountsTransition:
    def test_population_conserved(self, rng):
        protocol = TwoChoicesCounts()
        counts = protocol.init_counts(ColorConfiguration([600, 300, 100]))
        for _ in range(20):
            counts = protocol.step(counts, rng)
            assert counts.sum() == 1000
            assert (counts >= 0).all()

    def test_consensus_absorbing(self, rng):
        protocol = TwoChoicesCounts()
        counts = np.array([500, 0, 0])
        stepped = protocol.step(counts, rng)
        assert stepped.tolist() == [500, 0, 0]
        assert protocol.is_absorbed(stepped)

    def test_expected_drift_favours_plurality(self, rng):
        """One-round mean change of c1 must be positive under bias."""
        protocol = TwoChoicesCounts()
        start = np.array([6_000, 4_000])
        gains = []
        for _ in range(200):
            stepped = protocol.step(start.copy(), rng)
            gains.append(int(stepped[0]) - 6_000)
        assert np.mean(gains) > 0

    def test_agrees_with_agent_based_distribution(self):
        """The counts engine draws from the agent round's exact law:
        one-round marginals must match statistically."""
        n = 400
        config = ColorConfiguration([240, 160])
        trials = 300
        agent_rng = np.random.default_rng(7)
        counts_rng = np.random.default_rng(8)
        graph = CompleteGraph(n)
        agent_protocol = TwoChoicesSynchronous()
        counts_protocol = TwoChoicesCounts()
        agent_c1, counts_c1 = [], []
        for _ in range(trials):
            state = agent_protocol.make_state(
                np.array([0] * 240 + [1] * 160), k=2
            )
            agent_protocol.round_update(state, graph, agent_rng)
            agent_c1.append(int(state.counts()[0]))
            counts_c1.append(int(counts_protocol.step(np.array([240, 160]), counts_rng)[0]))
        mean_a, mean_c = np.mean(agent_c1), np.mean(counts_c1)
        pooled_sem = np.sqrt((np.var(agent_c1) + np.var(counts_c1)) / trials)
        assert abs(mean_a - mean_c) < 4 * pooled_sem + 1e-9

    def test_full_run_preserves_strong_plurality(self):
        engine = CountsEngine(TwoChoicesCounts())
        wins = 0
        for seed in range(10):
            result = engine.run(ColorConfiguration([7_000, 3_000]), seed=seed)
            wins += int(result.plurality_preserved)
        assert wins == 10

"""Tests for repro.graphs.complete (the paper's K_n)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import TopologyError
from repro.graphs.complete import CompleteGraph


class TestBasics:
    def test_degree(self):
        graph = CompleteGraph(10)
        assert graph.degree(0) == 9
        assert graph.degree(9) == 9
        assert len(graph) == 10
        assert graph.is_complete()

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            CompleteGraph(1)

    def test_degree_out_of_range(self):
        with pytest.raises(TopologyError):
            CompleteGraph(5).degree(5)

    def test_repr(self):
        assert "CompleteGraph" in repr(CompleteGraph(3))


class TestNeverSamplesSelf:
    def test_scalar(self, rng):
        graph = CompleteGraph(5)
        for node in range(5):
            for _ in range(200):
                assert graph.sample_neighbor(node, rng) != node

    def test_batch(self, rng):
        graph = CompleteGraph(7)
        for node in range(7):
            samples = graph.sample_neighbors(node, 500, rng)
            assert (samples != node).all()
            assert samples.min() >= 0 and samples.max() < 7

    def test_many(self, rng):
        graph = CompleteGraph(9)
        nodes = rng.integers(0, 9, size=2000)
        samples = graph.sample_neighbors_many(nodes, rng)
        assert (samples != nodes).all()

    def test_pairs(self, rng):
        graph = CompleteGraph(6)
        nodes = rng.integers(0, 6, size=1000)
        pairs = graph.sample_neighbor_pairs(nodes, rng)
        assert pairs.shape == (1000, 2)
        assert (pairs != nodes[:, None]).all()


class TestUniformity:
    def test_scalar_uniform_over_neighbors(self, rng):
        """Each neighbour should be hit ~uniformly (loose chi-square bound)."""
        n, node, draws = 6, 2, 30_000
        graph = CompleteGraph(n)
        samples = graph.sample_neighbors(node, draws, rng)
        counts = np.bincount(samples, minlength=n)
        assert counts[node] == 0
        expected = draws / (n - 1)
        others = np.delete(counts, node)
        # 5 sigma of a binomial around the uniform expectation.
        sigma = np.sqrt(draws * (1 / (n - 1)) * (1 - 1 / (n - 1)))
        assert (np.abs(others - expected) < 5 * sigma).all()

    def test_vectorised_matches_scalar_law(self, rng):
        """sample_neighbors_many must induce the same per-node marginal."""
        n, draws = 5, 30_000
        graph = CompleteGraph(n)
        nodes = np.full(draws, 3)
        samples = graph.sample_neighbors_many(nodes, rng)
        counts = np.bincount(samples, minlength=n)
        assert counts[3] == 0
        expected = draws / (n - 1)
        sigma = np.sqrt(draws / (n - 1))
        assert (np.abs(np.delete(counts, 3) - expected) < 5 * sigma).all()


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=200),
    node=st.integers(min_value=0, max_value=199),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_sample_in_range_and_not_self(n, node, seed):
    node = node % n
    graph = CompleteGraph(n)
    gen = np.random.default_rng(seed)
    sample = graph.sample_neighbor(node, gen)
    assert 0 <= sample < n
    assert sample != node
    batch = graph.sample_neighbors(node, 8, gen)
    assert ((batch >= 0) & (batch < n) & (batch != node)).all()

"""Tests for the isolated endgame (Section 3.2)."""

import math

import pytest

from repro.protocols.endgame import near_consensus_start, run_endgame


class TestNearConsensusStart:
    def test_counts(self):
        config = near_consensus_start(1000, 5, 0.1)
        assert config.n == 1000
        assert config.c1 == 900
        assert config.k == 5
        assert sum(config.counts[1:]) == 100

    def test_minority_split_evenly(self):
        config = near_consensus_start(1000, 5, 0.1)
        minority = config.counts[1:]
        assert max(minority) - min(minority) <= 1

    def test_every_color_populated(self):
        config = near_consensus_start(100, 10, 0.02)
        assert all(c >= 1 for c in config.counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            near_consensus_start(100, 1, 0.1)
        with pytest.raises(ValueError):
            near_consensus_start(100, 5, 0.9)


class TestRunEndgame:
    def test_reaches_consensus_on_plurality(self):
        config = near_consensus_start(500, 4, 0.1)
        result = run_endgame(config, seed=1)
        assert result.converged
        assert result.winner == 0

    def test_consensus_precedes_first_termination(self):
        config = near_consensus_start(800, 4, 0.1)
        ok = 0
        for seed in range(5):
            result = run_endgame(config, seed=seed)
            if result.metadata["consensus_before_first_termination"]:
                ok += 1
        assert ok >= 4

    def test_consensus_time_logarithmic_ballpark(self):
        config = near_consensus_start(2000, 4, 0.1)
        result = run_endgame(config, seed=3)
        ct = result.metadata["first_consensus_parallel_time"]
        assert ct is not None
        assert ct <= 6 * math.log(2000)

    def test_all_nodes_eventually_terminate(self):
        config = near_consensus_start(300, 3, 0.1)
        result = run_endgame(config, seed=2)
        # budget per node is ceil(factor * ln n); total parallel time is
        # bounded by a small multiple of it
        assert result.metadata["endgame_ticks"] == math.ceil(10.0 * math.log(300))
        assert result.parallel_time < 3 * result.metadata["endgame_ticks"] + 50

    def test_metadata_times_ordered(self):
        config = near_consensus_start(500, 4, 0.1)
        result = run_endgame(config, seed=4)
        ct = result.metadata["first_consensus_parallel_time"]
        tt = result.metadata["first_termination_parallel_time"]
        assert ct is not None and tt is not None
        assert result.metadata["consensus_before_first_termination"] == (ct <= tt)

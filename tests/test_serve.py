"""Tests for ``repro serve``: the persistent simulation-as-a-service layer.

The acceptance bar (ISSUE 8): warm-cache hits answer synchronously from
the in-process memo; N identical concurrent cold requests coalesce onto
exactly one engine run; response bodies are byte-identical across
cache/engine/coalesced serves and value-identical to ``simulate()`` /
``run_campaign()``; jobs expose point-level campaign progress; and a
SIGTERM drains the server cleanly with exit code 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    CampaignSpec,
    ResultCache,
    SimulationSpec,
    SweepSpec,
    run_campaign,
    simulate,
    spec_key,
)
from repro.api.serve import (
    Flight,
    Job,
    JobTable,
    ReproServer,
    ServeClient,
    ServeError,
    ServeRequestError,
    SimulationService,
    SingleFlight,
)
from repro.core.exceptions import ConfigurationError, ExperimentError

JOIN_TIMEOUT = 60.0


def _canon(payload):
    """Canonical JSON text — the serve wire format (NaN-tolerant equality)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _spec(n=200, reps=1, seed=7, **overrides):
    kwargs = dict(
        protocol="two-choices",
        n=n,
        initial="two-colors",
        initial_params={"gap": n // 5},
        reps=reps,
        seed=seed,
        max_steps=40 * n,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def _campaign(ns=(120, 140), seed=5, reps=1):
    return CampaignSpec(
        base=_spec(n=ns[0], reps=reps, seed=None),
        sweep=SweepSpec(axes={"n": list(ns)}),
        seed=seed,
        name="serve-test",
    )


# ---------------------------------------------------------------------------
# single-flight coalescing (pure unit tests, no HTTP)
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_leader_then_followers(self):
        flights = SingleFlight()
        first, lead1 = flights.join("k")
        second, lead2 = flights.join("k")
        assert lead1 and not lead2
        assert first is second
        assert second.followers == 1
        assert flights.pending() == 1

    def test_resolve_wakes_waiters_with_payload(self):
        flights = SingleFlight()
        flight, _ = flights.join("k")
        seen = []
        thread = threading.Thread(target=lambda: seen.append(flight.wait(JOIN_TIMEOUT)))
        thread.start()
        flights.resolve("k", payload={"answer": 42})
        thread.join(JOIN_TIMEOUT)
        assert seen == [True]
        assert flight.payload == {"answer": 42}
        assert flight.error is None
        assert flights.pending() == 0

    def test_resolve_with_error(self):
        flights = SingleFlight()
        flight, _ = flights.join("k")
        flights.resolve("k", error="boom")
        assert flight.wait(JOIN_TIMEOUT)
        assert flight.error == "boom"

    def test_resolve_unknown_key_is_noop(self):
        assert SingleFlight().resolve("ghost", payload={}) is None

    def test_new_flight_after_resolve(self):
        flights = SingleFlight()
        first, _ = flights.join("k")
        flights.resolve("k", payload={})
        second, lead = flights.join("k")
        assert lead
        assert second is not first

    def test_on_lead_runs_once_under_the_lock(self):
        flights = SingleFlight()
        calls = []
        flights.join("k", on_lead=lambda f: calls.append(f.key))
        flights.join("k", on_lead=lambda f: calls.append("follower should not run this"))
        assert calls == ["k"]

    def test_on_lead_failure_does_not_poison_the_key(self):
        flights = SingleFlight()
        with pytest.raises(RuntimeError):
            flights.join("k", on_lead=lambda f: (_ for _ in ()).throw(RuntimeError("no")))
        assert flights.pending() == 0
        flight, lead = flights.join("k")
        assert lead and isinstance(flight, Flight)


class TestJobTable:
    def test_lifecycle_payload(self):
        table = JobTable()
        job = table.create("simulate", "abc", total=1)
        assert job.status == "queued"
        payload = job.to_payload()
        assert payload["progress"] == {"completed": 0, "total": 1}
        job.mark_running()
        assert job.status == "running"
        job.mark_point("abc")
        job.mark_done(engine_runs=1, cache_hits=0)
        payload = job.to_payload()
        assert payload["status"] == "done"
        assert payload["progress"]["completed"] == 1
        assert payload["engine_runs"] == 1

    def test_mark_point_is_idempotent_per_key(self):
        job = Job("job-000001", "campaign", "k", total=3)
        job.mark_point("p1")
        job.mark_point("p1")  # progress_hook + in-order consumer double-put
        job.mark_point("p2")
        assert job.completed == 2

    def test_error_state(self):
        job = Job("job-000001", "simulate", "k", total=1)
        job.mark_running()
        job.mark_error("ValueError: nope")
        payload = job.to_payload()
        assert payload["status"] == "error"
        assert payload["error"] == "ValueError: nope"

    def test_counts_and_summaries(self):
        table = JobTable()
        first = table.create("simulate", "a", total=1)
        table.create("campaign", "b", total=4)
        first.mark_running()
        counts = table.counts()
        assert counts["queued"] == 1 and counts["running"] == 1
        summaries = table.summaries()
        assert summaries[0]["id"] == "job-000002"  # newest first
        assert table.get("job-000001") is first
        assert table.get("nope") is None


# ---------------------------------------------------------------------------
# the ResultCache LRU memo (satellite: hot keys skip the filesystem)
# ---------------------------------------------------------------------------
class TestCacheMemo:
    def test_memo_disabled_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec(n=60)
        cache.put(spec, simulate(spec))
        assert cache.memo_len == 0

    def test_put_seeds_memo_and_get_skips_the_file(self, tmp_path):
        cache = ResultCache(tmp_path, memo_size=4)
        spec = _spec(n=60)
        cache.put(spec, simulate(spec))
        assert cache.memo_len == 1
        # Deleting the file proves the memo serves the hit.
        cache.path_for(spec_key(spec)).unlink()
        assert cache.get(spec) is not None
        assert cache.get_payload(spec)["spec"] == spec.to_dict()

    def test_read_key_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, memo_size=4)
        spec = _spec(n=60)
        result = simulate(spec)
        cache.put(spec, result)
        key = spec_key(spec)
        payload = cache.read_key(key)
        assert payload["engine"] == result.engine
        assert cache.read_key("0" * 64) is None

    def test_lru_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path, memo_size=2)
        specs = [_spec(n=60, seed=seed) for seed in (1, 2, 3)]
        for spec in specs:
            cache.put(spec, simulate(spec))
        assert cache.memo_len == 2
        # seed=1 was evicted: with its file gone, the miss is real.
        cache.path_for(spec_key(specs[0])).unlink()
        assert cache.get(specs[0]) is None
        # seed=3 still memoized even with its file gone.
        cache.path_for(spec_key(specs[2])).unlink()
        assert cache.get(specs[2]) is not None

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, memo_size=2)
        specs = [_spec(n=60, seed=seed) for seed in (1, 2, 3)]
        cache.put(specs[0], simulate(specs[0]))
        cache.put(specs[1], simulate(specs[1]))
        assert cache.get_payload(specs[0]) is not None  # touch seed=1
        cache.put(specs[2], simulate(specs[2]))         # evicts seed=2, not 1
        cache.path_for(spec_key(specs[0])).unlink()
        assert cache.get(specs[0]) is not None

    def test_corruption_detection_survives_memo(self, tmp_path):
        cache = ResultCache(tmp_path, memo_size=0)
        spec = _spec(n=60)
        cache.put(spec, simulate(spec))
        path = cache.path_for(spec_key(spec))
        payload = json.loads(path.read_text())
        payload["result"]["spec"]["n"] = 61
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError):
            cache.get_payload(spec)

    def test_negative_memo_size_refused(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, memo_size=-1)


# ---------------------------------------------------------------------------
# the HTTP surface (one shared server per test class)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with ReproServer(port=0, cache_dir=cache_dir, workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(server.address) as c:
        yield c


class TestServeHTTP:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert set(health["stats"]) >= {"requests", "cache_hits", "engine_runs", "coalesced"}

    def test_registry(self, client):
        registry = client.registry()
        assert "two-choices" in registry["protocols"]
        assert "complete" in registry["topologies"]
        assert set(registry["executors"]) >= {"serial", "process", "distributed"}
        assert registry["experiments"]  # T1..T12

    def test_simulate_value_identical_to_local(self, client):
        spec = _spec(n=160, seed=101)
        served = client.simulate(spec)
        local = simulate(spec).to_dict()
        served.pop("elapsed_seconds")
        local.pop("elapsed_seconds")
        # Canonical JSON text: NaN summary statistics (zero-variance or
        # unconverged points) compare unequal as floats but identically
        # as serialized text.
        assert _canon(served) == _canon(local)

    def test_warm_hit_is_byte_identical_and_counted(self, client, server):
        spec = _spec(n=150, seed=102)
        status1, headers1, body1 = client.request_raw("POST", "/v1/simulate", spec.to_dict())
        assert status1 == 200
        before = client.health()["stats"]
        status2, headers2, body2 = client.request_raw("POST", "/v1/simulate", spec.to_dict())
        after = client.health()["stats"]
        assert status2 == 200
        assert headers2["X-Repro-Served"] == "cache"
        assert body2 == body1
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["engine_runs"] == before["engine_runs"]

    def test_response_key_header_matches_spec_key(self, client):
        spec = _spec(n=150, seed=102)
        _, headers, _ = client.request_raw("POST", "/v1/simulate", spec.to_dict())
        assert headers["X-Repro-Key"] == spec_key(spec)

    def test_concurrent_identical_cold_requests_run_once(self, server, client):
        spec = _spec(n=170, seed=103)
        before = client.health()["stats"]
        outcomes = [None] * 6

        def post(i):
            with ServeClient(server.address) as c:
                outcomes[i] = c.request_raw("POST", "/v1/simulate", spec.to_dict())

        threads = [threading.Thread(target=post, args=(i,)) for i in range(len(outcomes))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(JOIN_TIMEOUT)
        after = client.health()["stats"]
        assert after["engine_runs"] - before["engine_runs"] == 1
        statuses = {status for status, _, _ in outcomes}
        assert statuses == {200}
        bodies = {body for _, _, body in outcomes}
        assert len(bodies) == 1  # byte-identical across engine/coalesced serves
        served = sorted(headers["X-Repro-Served"] for _, headers, _ in outcomes)
        assert served.count("engine") == 1
        assert set(served) <= {"engine", "coalesced", "cache"}

    def test_campaign_value_identical_to_local(self, client, tmp_path):
        campaign = _campaign(ns=(110, 130), seed=51)
        served = client.campaign(campaign)
        local = run_campaign(campaign).to_dict()
        local.pop("execution")
        assert _canon(served) == _canon(local)

    def test_campaign_warm_replay_served_from_memo(self, client):
        campaign = _campaign(ns=(110, 130), seed=51)  # same as above: warm
        status, headers, _ = client.request_raw("POST", "/v1/campaign", campaign.to_dict())
        assert status == 200
        assert headers["X-Repro-Served"] == "cache"

    def test_async_submit_polls_to_done(self, client):
        spec = _spec(n=140, seed=104)
        reply = client.simulate(spec, wait=False)
        assert set(reply) == {"job", "key", "status"}
        assert reply["status"] in {"queued", "running", "done"}
        final = client.wait_job(reply["job"], timeout=JOIN_TIMEOUT)
        assert final["spec"] == spec.to_dict()
        job = client.job(reply["job"])
        assert job["status"] == "done"
        assert job["progress"] == {"completed": 1, "total": 1}

    def test_campaign_job_streams_point_progress(self, client):
        campaign = _campaign(ns=(100, 115, 125), seed=52)
        reply = client.campaign(campaign, wait=False)
        job_id = reply["job"]
        out = client.wait_job(job_id, timeout=JOIN_TIMEOUT)
        assert len(out["points"]) == 3
        job = client.job(job_id)
        assert job["kind"] == "campaign"
        assert job["progress"] == {"completed": 3, "total": 3}
        assert job["engine_runs"] + job["cache_hits"] == 3

    def test_results_endpoint_serves_cached_payload(self, client):
        spec = _spec(n=150, seed=102)  # cached by the warm-hit test
        client.simulate(spec)
        payload = client.result(spec_key(spec))
        assert payload["spec"] == spec.to_dict()

    def test_jobs_listing(self, client):
        listing = client.jobs()
        assert listing["counts"]["done"] >= 1
        assert listing["jobs"][0]["id"].startswith("job-")

    def test_unseeded_spec_refused(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(_spec(seed=None))
        assert err.value.status == 400
        assert "seed" in str(err.value)

    def test_traced_spec_refused(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate(_spec(record_trace=True))
        assert err.value.status == 400

    def test_unknown_protocol_is_400_not_500(self, client):
        with pytest.raises(ServeError) as err:
            client.simulate({"protocol": "not-a-protocol", "n": 50, "seed": 1})
        assert err.value.status == 400
        assert "unknown protocol" in str(err.value)

    def test_missing_content_length_411(self, client):
        conn = client._connection()
        conn.putrequest("POST", "/v1/simulate", skip_accept_encoding=True)
        conn.endheaders()  # no Content-Length header at all
        response = conn.getresponse()
        response.read()
        assert response.status == 411
        client.close()  # the 411 reply closes the connection server-side

    def test_non_object_body_refused(self, client):
        status, _, body = client.request_raw("POST", "/v1/simulate", None)
        # http.client stamps Content-Length: 0 -> empty body -> bad JSON
        assert status == 400
        conn = client._connection()
        conn.request("POST", "/v1/simulate", body=b"[1, 2]",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = response.read()
        assert response.status == 400
        assert b"JSON object" in data

    def test_invalid_json_body_refused(self, client):
        conn = client._connection()
        conn.request("POST", "/v1/simulate", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        response.read()
        assert response.status == 400

    def test_unknown_paths_404(self, client):
        for method, path in (("GET", "/nope"), ("POST", "/v1/nope"), ("GET", "/v1/jobs/ghost")):
            status, _, _ = client.request_raw(method, path, {} if method == "POST" else None)
            assert status == 404
        status, _, _ = client.request_raw("GET", "/v1/results/" + "0" * 64)
        assert status == 404

    def test_wait_zero_returns_job_for_cold_key(self, client):
        spec = _spec(n=135, seed=105)
        status, headers, body = client.request_raw(
            "POST", "/v1/simulate?wait=0", spec.to_dict()
        )
        assert status == 202
        reply = json.loads(body)
        final = client.wait_job(reply["job"], timeout=JOIN_TIMEOUT)
        assert final["spec"] == spec.to_dict()


class TestServiceDirect:
    """SimulationService without HTTP: admission control and drain."""

    def test_draining_service_refuses_new_work(self, tmp_path):
        service = SimulationService(cache_dir=tmp_path, workers=1)
        try:
            service.draining.set()
            with pytest.raises(ServeRequestError) as err:
                service.submit_simulate(_spec(n=60).to_dict())
            assert err.value.status == 503
        finally:
            service.draining.clear()
            service.drain()

    def test_drain_finishes_queued_jobs_first(self, tmp_path):
        service = SimulationService(cache_dir=tmp_path, workers=1)
        spec = _spec(n=90, seed=61)
        reply = service.submit_simulate(spec.to_dict(), wait=False)
        service.drain()
        job = service.jobs.get(reply["job_id"])
        assert job.status == "done"
        assert service.cache.get_payload(spec) is not None

    def test_invalid_configuration_refused(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SimulationService(cache_dir=tmp_path, workers=0)
        with pytest.raises(ConfigurationError):
            SimulationService(cache_dir=tmp_path, workers=1, queue_limit=0)
        with pytest.raises(ConfigurationError):
            SimulationService(cache_dir=tmp_path, workers=1, executor="not-an-executor")

    def test_warm_hit_without_http(self, tmp_path):
        service = SimulationService(cache_dir=tmp_path, workers=1)
        try:
            spec = _spec(n=80, seed=62)
            cold = service.submit_simulate(spec.to_dict())
            assert cold["served"] == "engine"
            warm = service.submit_simulate(spec.to_dict())
            assert warm["served"] == "cache"
            assert warm["payload"] == cold["payload"]
        finally:
            service.drain()


class TestServeClientAddresses:
    def test_string_address_needs_port(self):
        with pytest.raises((ConfigurationError, ExperimentError)):
            ServeClient("localhost")

    def test_tuple_address(self):
        client = ServeClient(("127.0.0.1", 7680))
        assert (client.host, client.port) == ("127.0.0.1", 7680)


class TestServeCLI:
    def test_serve_in_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0", "--workers", "3"])
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 3
        assert args.cache_dir == ".repro-cache"
        assert args.executor == "serial"
        assert args.queue_limit == 256

    def test_subprocess_serve_sigterm_drains_clean(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache"), "--workers", "1"],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            announce = proc.stderr.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", announce)
            assert match, f"no listen announcement in {announce!r}"
            with ServeClient(("127.0.0.1", int(match.group(1)))) as client:
                spec = _spec(n=80, seed=63)
                result = client.simulate(spec)
                assert len(result["runs"]) == 1
                assert client.health()["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=JOIN_TIMEOUT)
            assert code == 0
            tail = proc.stderr.read()
            assert "drained cleanly" in tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

"""Tests for the event-skipping sequential Two-Choices simulator."""

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.protocols.two_choices import TwoChoicesSequential
from repro.protocols.two_choices_fast import two_choices_sequential_fast


class TestBasics:
    def test_converges_to_plurality(self):
        result = two_choices_sequential_fast(ColorConfiguration([700, 300]), seed=1)
        assert result.converged
        assert result.winner == 0
        assert result.parallel_time == pytest.approx(result.rounds / 1000)

    def test_population_conserved_on_trace(self):
        result = two_choices_sequential_fast(
            ColorConfiguration([600, 300, 100]), seed=2, record_trace=True
        )
        totals = result.trace.count_matrix().sum(axis=1)
        assert (totals == 1000).all()

    def test_consensus_start_is_absorbing(self):
        result = two_choices_sequential_fast(ColorConfiguration([500, 0]), seed=3)
        assert result.converged
        assert result.rounds == 0

    def test_budget_respected(self):
        result = two_choices_sequential_fast(
            ColorConfiguration([501, 499]), seed=4, max_parallel_time=0.5
        )
        assert result.rounds <= 500

    def test_requires_configuration(self):
        with pytest.raises(ConfigurationError):
            two_choices_sequential_fast(np.array([5, 5]), seed=0)

    def test_deterministic_given_seed(self):
        a = two_choices_sequential_fast(ColorConfiguration([600, 400]), seed=9)
        b = two_choices_sequential_fast(ColorConfiguration([600, 400]), seed=9)
        assert a.rounds == b.rounds
        assert a.final.counts == b.final.counts


class TestLargeScale:
    def test_million_nodes_in_reasonable_time(self):
        """The whole point: asynchronous Two-Choices at n = 10^6."""
        result = two_choices_sequential_fast(ColorConfiguration([700_000, 300_000]), seed=5)
        assert result.converged
        assert result.winner == 0
        # Theta((n/c1) log n) parallel time, constants modest.
        assert result.parallel_time < 60

    def test_parallel_time_scales_logarithmically(self):
        times = []
        for n in (10_000, 1_000_000):
            result = two_choices_sequential_fast(
                ColorConfiguration([int(0.7 * n), n - int(0.7 * n)]), seed=6
            )
            times.append(result.parallel_time)
        assert times[1] < times[0] * 3  # x100 in n, far from x100 in time


class TestLawAgreement:
    def test_matches_plain_sequential_engine(self):
        """Tick-count distributions agree with the plain engine."""
        n = 300
        config = ColorConfiguration([210, 90])
        trials = 20
        plain_engine = SequentialEngine(TwoChoicesSequential(), CompleteGraph(n))
        plain = [plain_engine.run(config, seed=s).rounds for s in range(trials)]
        fast = [two_choices_sequential_fast(config, seed=500 + s).rounds for s in range(trials)]
        pooled_sem = np.sqrt((np.var(plain) + np.var(fast)) / trials)
        assert abs(np.mean(plain) - np.mean(fast)) < 4 * pooled_sem + n * 0.05

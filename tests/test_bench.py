"""Tests for the bench harness plumbing: tables, store, harness, registry."""

import json

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.bench.harness import FULL, QUICK, ExperimentReport, ExperimentScale, run_trials
from repro.bench.store import ResultStore
from repro.bench.tables import format_cell, format_table
from repro.core.exceptions import ExperimentError


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(1e-9) == "1.000e-09"
        assert format_cell(0.0) == "0"
        assert format_cell(float("nan")) == "nan"

    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        payload = {"rows": [[1, 2]], "title": "x"}
        path = store.save("T1", payload)
        assert path.exists()
        assert store.load("T1") == payload
        assert store.exists("T1")
        assert store.list_ids() == ["T1"]

    def test_load_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.load("nope")

    def test_list_empty_directory(self, tmp_path):
        assert ResultStore(tmp_path / "missing").list_ids() == []

    def test_id_sanitised(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save("a/b", {"x": 1})
        assert "a_b" in path.name


class TestHarness:
    def test_scales(self):
        assert QUICK.trials < FULL.trials
        assert QUICK.scaled(1000) == 500
        assert QUICK.scaled(2, minimum=5) == 5

    def test_run_trials_deterministic(self):
        # Trial seeds are SeedSequence children of the master seed:
        # pure function of the master, all distinct.
        draw = lambda s: int(np.random.default_rng(s).integers(1 << 30))
        a = run_trials(draw, 4, seed=1)
        b = run_trials(draw, 4, seed=1)
        assert a == b
        assert len(set(a)) == 4

    def test_report_format_and_checks(self):
        report = ExperimentReport(
            experiment_id="TX",
            title="demo",
            claim="something holds",
            headers=["a"],
            rows=[[1]],
            checks={"ok": True, "bad": False},
            notes=["hello"],
        )
        text = report.format()
        assert "TX" in text and "PASS" in text and "FAIL" in text and "hello" in text
        assert not report.all_checks_pass()

    def test_report_to_dict_json(self):
        report = ExperimentReport(
            experiment_id="TX",
            title="demo",
            claim="c",
            headers=["a"],
            rows=[[1.5]],
            checks={"ok": True},
        )
        assert json.loads(json.dumps(report.to_dict()))["experiment_id"] == "TX"


class TestRegistry:
    def test_all_registered_in_order(self):
        expected = [f"T{i}" for i in range(1, 13)] + [f"A{i}" for i in range(1, 5)] + ["S1"]
        assert experiment_ids() == expected
        assert set(EXPERIMENTS) == set(experiment_ids())

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            run_experiment("T99")

    def test_case_insensitive(self, tmp_path):
        tiny = ExperimentScale(name="tiny", trials=2, size_factor=0.02, seed=3)
        report = run_experiment("t3", scale=tiny)
        assert report.experiment_id == "T3"

    def test_run_with_store(self, tmp_path):
        tiny = ExperimentScale(name="tiny", trials=2, size_factor=0.02, seed=3)
        store = ResultStore(tmp_path)
        report = run_experiment("T3", scale=tiny, store=store)
        assert store.exists("T3")
        stored = store.load("T3")
        assert stored["headers"] == list(report.headers)


class TestTinyScaleSmoke:
    """Each cheap experiment must *run* at a tiny scale (checks may
    fail there — only the report structure is asserted)."""

    @pytest.mark.parametrize("eid", ["T1", "T2", "T3", "T5", "T8", "T9", "T10"])
    def test_structure(self, eid):
        tiny = ExperimentScale(name="tiny", trials=2, size_factor=0.05, seed=11)
        report = run_experiment(eid, scale=tiny)
        assert report.experiment_id == eid
        assert report.rows
        assert report.headers
        assert isinstance(report.checks, dict)
        assert report.elapsed_seconds >= 0

"""Tests for the distributed campaign executor and the executor fault paths.

The acceptance bar (ISSUE 7): a distributed campaign is value-for-value
identical to a serial one — independent of worker count, join timing,
lease expiry, and worker kills — because per-point seeds are pinned
before dispatch; a lost worker's in-flight points are requeued; and the
coordinator refuses the same unseeded/traced specs the cache does.
"""

import io
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.api import (
    CampaignSpec,
    DistributedExecutor,
    ExecutorPointError,
    ProcessExecutor,
    ResultCache,
    SimulationSpec,
    SweepSpec,
    run_campaign,
    simulate,
    spec_key,
)
from repro.api import executors as executors_module
from repro.api.distributed import (
    parse_address,
    recv_frame,
    run_worker,
    send_frame,
)
from repro.api.executors import EXECUTORS, execute_with_retries, resolve_executor
from repro.core.exceptions import ConfigurationError, ExperimentError

JOIN_TIMEOUT = 60.0


def _base(n=300, reps=2, **overrides):
    kwargs = dict(
        protocol="two-choices",
        n=n,
        initial="two-colors",
        initial_params={"gap": n // 5},
        reps=reps,
        max_steps=40 * n,
    )
    kwargs.update(overrides)
    return SimulationSpec(**kwargs)


def _campaign(ns=(300, 400), seed=11, **kwargs):
    return CampaignSpec(base=_base(), sweep=SweepSpec(axes={"n": list(ns)}), seed=seed, **kwargs)


def _deterministic(result):
    payload = result.to_dict()
    del payload["execution"]
    return payload


def _start_worker_thread(executor, delay=0.0, connect_retry=10.0):
    address = f"{executor.host}:{executor.port}"

    def serve():
        if delay:
            time.sleep(delay)
        run_worker(address, connect_retry=connect_retry, stream=io.StringIO())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


def _run_campaign_async(campaign, executor, **kwargs):
    holder = {}

    def target():
        try:
            holder["result"] = run_campaign(campaign, executor=executor, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            holder["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, holder


class _RawClient:
    """A hand-driven worker for protocol-level tests (no heartbeats)."""

    def __init__(self, executor, worker_id="raw"):
        self.sock = socket.create_connection(executor.address, timeout=15.0)
        self.sock.settimeout(15.0)
        send_frame(self.sock, {"type": "hello", "worker": worker_id})
        welcome = recv_frame(self.sock)
        assert welcome is not None and welcome["type"] == "welcome"
        self.welcome = welcome

    def request_task(self):
        """Send ``next`` until a task / shutdown arrives."""
        while True:
            send_frame(self.sock, {"type": "next"})
            message = recv_frame(self.sock)
            assert message is not None
            if message["type"] == "wait":
                continue
            return message

    def send(self, message):
        send_frame(self.sock, message)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------
class TestFrameCodec:
    @pytest.mark.parametrize(
        "message",
        [
            {"type": "hello"},
            {"type": "task", "task": 0, "payload": {"n": 1000, "nested": {"a": [1, 2.5, None]}}},
            {"type": "result", "task": 3, "payload": {"text": "ünïcode ✓", "empty": {}}},
        ],
    )
    def test_round_trip(self, message):
        a, b = socket.socketpair()
        try:
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = socket.socketpair()
        try:
            for i in range(20):
                send_frame(a, {"type": "seq", "i": i})
            for i in range(20):
                assert recv_frame(b) == {"type": "seq", "i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_reads_as_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_reads_as_none(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")  # half a header, then the peer dies
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_non_object_frame_rejected(self):
        import json as json_module
        import struct

        a, b = socket.socketpair()
        try:
            body = json_module.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ExperimentError, match="type"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected(self):
        import struct

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(ExperimentError, match="exceeds"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestParseAddress:
    def test_forms(self):
        assert parse_address(None) == ("127.0.0.1", 0)
        assert parse_address("") == ("127.0.0.1", 0)
        assert parse_address("7654") == ("127.0.0.1", 7654)
        assert parse_address("0.0.0.0:7654") == ("0.0.0.0", 7654)
        assert parse_address("example.com:80") == ("example.com", 80)

    @pytest.mark.parametrize("text", ["host", "host:", "a:b", "1:2:c"])
    def test_bad_addresses_rejected(self, text):
        with pytest.raises(ConfigurationError, match="address"):
            parse_address(text)

    def test_port_range_checked(self):
        with pytest.raises(ConfigurationError, match="range"):
            parse_address("70000")


# ---------------------------------------------------------------------------
# executor registry / resolution
# ---------------------------------------------------------------------------
class TestResolution:
    def test_distributed_registered(self):
        assert EXECUTORS["distributed"] is DistributedExecutor

    def test_resolve_from_string_with_port(self):
        executor = resolve_executor("distributed:0")
        try:
            assert isinstance(executor, DistributedExecutor)
            assert executor.host == "127.0.0.1" and executor.port > 0
        finally:
            executor.close()

    def test_resolve_bare_name(self):
        executor = resolve_executor("distributed")
        try:
            assert executor.port > 0  # ephemeral bind happened
        finally:
            executor.close()

    def test_unknown_executor_lists_registered_names(self):
        with pytest.raises(ConfigurationError, match="distributed.*process.*serial"):
            resolve_executor("gpu")

    def test_suffix_on_plain_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="no ':<arg>' suffix"):
            resolve_executor("serial:foo")

    def test_duck_type_error_lists_registered_names(self):
        with pytest.raises(ConfigurationError, match="registered names.*distributed"):
            resolve_executor(object())

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            DistributedExecutor(lease_timeout=0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            DistributedExecutor(max_retries=-1)

    def test_closed_executor_refuses_work(self):
        executor = DistributedExecutor()
        executor.close()
        with pytest.raises(ExperimentError, match="closed"):
            executor.map_payloads([_base(seed=1).to_dict()])


class TestRefusals:
    def test_unseeded_payload_refused(self):
        with DistributedExecutor() as executor:
            with pytest.raises(ConfigurationError, match="seed=None"):
                executor.map_payloads([_base(seed=None).to_dict()])

    def test_traced_payload_refused(self):
        payload = _base(reps=1, seed=3, record_trace=True, trace_every=1.0).to_dict()
        with DistributedExecutor() as executor:
            with pytest.raises(ConfigurationError, match="traced"):
                executor.map_payloads([payload])

    def test_empty_batch_needs_no_workers(self):
        with DistributedExecutor() as executor:
            assert list(executor.map_payloads([])) == []


# ---------------------------------------------------------------------------
# full campaigns over the wire
# ---------------------------------------------------------------------------
class TestDistributedCampaign:
    def test_distributed_equals_serial_equals_warm_cache(self, tmp_path):
        campaign = _campaign(ns=(300, 350, 400, 450))
        serial = run_campaign(campaign)
        with DistributedExecutor(lease_timeout=15.0) as executor:
            workers = [_start_worker_thread(executor) for _ in range(2)]
            distributed = run_campaign(campaign, executor=executor, cache=str(tmp_path))
            for worker in workers:
                worker.join(JOIN_TIMEOUT)
        assert _deterministic(distributed) == _deterministic(serial)
        assert distributed.executor == "distributed"
        assert executor.last_stats["workers_seen"] == 2

        warm = run_campaign(campaign, cache=str(tmp_path))
        assert warm.engine_runs == 0 and warm.cache_hits == 4
        assert _deterministic(warm) == _deterministic(serial)

    def test_worker_count_does_not_matter(self):
        campaign = _campaign(ns=(300, 350, 400))
        results = []
        for count in (1, 3):
            with DistributedExecutor(lease_timeout=15.0) as executor:
                workers = [_start_worker_thread(executor) for _ in range(count)]
                results.append(run_campaign(campaign, executor=executor))
                for worker in workers:
                    worker.join(JOIN_TIMEOUT)
        assert _deterministic(results[0]) == _deterministic(results[1])

    def test_late_joining_worker_picks_up_work(self):
        campaign = _campaign(ns=(300, 400))
        with DistributedExecutor(lease_timeout=15.0) as executor:
            thread, holder = _run_campaign_async(campaign, executor)
            worker = _start_worker_thread(executor, delay=0.5)  # joins after the campaign starts
            thread.join(JOIN_TIMEOUT)
            worker.join(JOIN_TIMEOUT)
        assert not thread.is_alive() and "result" in holder, holder
        assert _deterministic(holder["result"]) == _deterministic(run_campaign(campaign))

    def test_lease_expiry_requeues_the_point(self):
        campaign = _campaign(ns=(300, 400, 500))
        with DistributedExecutor(lease_timeout=0.6) as executor:
            thread, holder = _run_campaign_async(campaign, executor)
            claimer = _RawClient(executor, worker_id="hung")
            try:
                claimed = claimer.request_task()
                assert claimed["type"] == "task"
                # The claimer now sits on its lease without heartbeats or
                # a result — a hung worker.  A healthy worker joins and
                # must end up serving the expired point too.
                worker = _start_worker_thread(executor)
                thread.join(JOIN_TIMEOUT)
                worker.join(JOIN_TIMEOUT)
            finally:
                claimer.close()
        assert not thread.is_alive() and "result" in holder, holder
        assert executor.last_stats["requeued"] >= 1, executor.last_stats
        assert _deterministic(holder["result"]) == _deterministic(run_campaign(campaign))

    def test_worker_kill_mid_campaign_completes_and_matches_serial(self, tmp_path):
        campaign = _campaign(ns=(300, 340, 380, 420, 460, 500))
        serial = run_campaign(campaign)
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        with DistributedExecutor(lease_timeout=10.0) as executor:
            procs = [
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{executor.host}:{executor.port}",
                        "--connect-retry",
                        "30",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                for _ in range(2)
            ]
            killed = {"done": False}

            def kill_one(position, payload):
                # First landed result: hard-kill one worker mid-campaign.
                if not killed["done"]:
                    killed["done"] = True
                    procs[0].kill()

            executor.progress_hook = kill_one
            try:
                distributed = run_campaign(campaign, executor=executor)
            finally:
                for proc in procs:
                    proc.kill()
                    proc.wait(timeout=30)
        assert killed["done"]
        assert _deterministic(distributed) == _deterministic(serial)

    def test_no_worker_startup_timeout_aborts_loudly(self):
        campaign = _campaign(ns=(300,))
        with DistributedExecutor(startup_timeout=0.3) as executor:
            with pytest.raises(ExperimentError, match="no worker connected"):
                run_campaign(campaign, executor=executor)


class TestDistributedRetries:
    def test_reported_error_is_retried_on_requeue(self):
        campaign = _campaign(ns=(300, 400))
        serial = run_campaign(campaign)
        with DistributedExecutor(lease_timeout=15.0, max_retries=1) as executor:
            thread, holder = _run_campaign_async(campaign, executor)
            client = _RawClient(executor, worker_id="flaky")
            try:
                errored = False
                while True:
                    message = client.request_task()
                    if message["type"] == "shutdown":
                        break
                    assert message["type"] == "task"
                    if not errored:
                        errored = True
                        client.send(
                            {"type": "error", "task": message["task"], "message": "transient"}
                        )
                        continue
                    payload = executors_module.execute_spec_payload(message["payload"])
                    client.send({"type": "result", "task": message["task"], "payload": payload})
            finally:
                client.close()
            thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive() and "result" in holder, holder
        assert executor.last_stats["retried"] == 1, executor.last_stats
        assert _deterministic(holder["result"]) == _deterministic(serial)

    def test_retries_exhausted_aborts_with_cache_key(self):
        campaign = _campaign(ns=(300, 400))
        key = spec_key(campaign.points()[0])
        with DistributedExecutor(lease_timeout=15.0, max_retries=0) as executor:
            thread, holder = _run_campaign_async(campaign, executor)
            client = _RawClient(executor, worker_id="broken")
            try:
                while True:
                    message = client.request_task()
                    if message["type"] == "shutdown":
                        break
                    client.send(
                        {"type": "error", "task": message["task"], "message": "boom"}
                    )
            finally:
                client.close()
            thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive() and "error" in holder, holder
        error = holder["error"]
        assert isinstance(error, ExperimentError)
        assert "cache key" in str(error) and "boom" in str(error)
        # the failing point is named by its content address
        assert key in str(error) or spec_key(campaign.points()[1]) in str(error)


# ---------------------------------------------------------------------------
# process-executor fault paths (the shared retry knob)
# ---------------------------------------------------------------------------
class TestProcessExecutorFaults:
    def test_failure_surfaces_cache_key(self):
        good = _base(seed=3).to_dict()
        bad = dict(good, protocol="no-such-protocol")
        executor = ProcessExecutor(workers=2, max_retries=0)
        with pytest.raises(ExecutorPointError, match="cache key") as excinfo:
            list(executor.map_payloads([good, bad]))
        assert spec_key(bad) in str(excinfo.value)
        assert "no-such-protocol" in str(excinfo.value)

    def test_max_retries_validated(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            ProcessExecutor(max_retries=-1)

    def test_execute_with_retries_recovers_from_transient(self, monkeypatch):
        payload = _base(seed=3).to_dict()
        expected = executors_module.execute_spec_payload(payload)
        calls = {"count": 0}

        def flaky(p):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient")
            return expected

        monkeypatch.setattr(executors_module, "execute_spec_payload", flaky)
        assert execute_with_retries(payload, max_retries=1) == expected
        assert calls["count"] == 2

    def test_execute_with_retries_exhausted_wraps_error(self, monkeypatch):
        payload = _base(seed=3).to_dict()

        def broken(p):
            raise RuntimeError("permanent")

        monkeypatch.setattr(executors_module, "execute_spec_payload", broken)
        with pytest.raises(ExecutorPointError, match="permanent") as excinfo:
            execute_with_retries(payload, max_retries=1)
        assert "2 attempt(s)" in str(excinfo.value)
        assert spec_key(payload) in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCliSurface:
    def test_list_shows_executors_section(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "executors (repro sweep --executor)" in out
        for name in ("serial", "process", "distributed"):
            assert name in out

    def test_worker_requires_connect(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_address_requires_port(self):
        with pytest.raises(ConfigurationError, match="port"):
            run_worker("", connect_retry=0.1, stream=io.StringIO())

    def test_worker_gives_up_after_retry_window(self):
        # Nothing listens on this port: the worker must exit 0 after the
        # window instead of hanging.
        stream = io.StringIO()
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert run_worker(f"127.0.0.1:{free_port}", connect_retry=0.3, stream=stream) == 0
        assert "no coordinator" in stream.getvalue()


# ---------------------------------------------------------------------------
# graceful worker drain (ISSUE 8 satellite): SIGTERM finishes the
# in-flight point, sends the result, and exits 0
# ---------------------------------------------------------------------------
class TestWorkerDrain:
    def test_drain_before_connect_exits_zero(self):
        stream = io.StringIO()
        drain = threading.Event()
        drain.set()
        assert run_worker("127.0.0.1:1", connect_retry=5.0, stream=stream, drain=drain) == 0
        assert "SIGTERM" in stream.getvalue()
        assert "0 point(s) served" in stream.getvalue()

    def test_drain_during_connect_retry_exits_zero(self):
        # Nothing listens here; the drain event must cut the retry loop
        # short instead of waiting out the whole window.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        stream = io.StringIO()
        drain = threading.Event()
        holder = {}

        def serve():
            holder["code"] = run_worker(
                f"127.0.0.1:{free_port}", connect_retry=30.0, stream=stream, drain=drain
            )

        thread = threading.Thread(target=serve, daemon=True)
        started = time.monotonic()
        thread.start()
        time.sleep(0.2)
        drain.set()
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive()
        assert holder["code"] == 0
        assert time.monotonic() - started < 10.0  # nowhere near the 30s window
        assert "SIGTERM" in stream.getvalue()

    def test_drain_mid_campaign_finishes_inflight_point(self):
        """Drain lands between points: the worker books its in-flight
        point with the coordinator, then exits 0 with the drained
        message while a second worker completes the campaign."""
        campaign = _campaign(ns=(300, 340, 380, 420))
        serial = run_campaign(campaign)
        stream = io.StringIO()
        drain = threading.Event()
        holder = {}
        with DistributedExecutor(lease_timeout=15.0) as executor:
            address = f"{executor.host}:{executor.port}"

            def serve_draining():
                holder["code"] = run_worker(
                    address, connect_retry=10.0, stream=stream, drain=drain
                )

            first = threading.Thread(target=serve_draining, daemon=True)
            first.start()
            second = {}

            def on_result(position, payload):
                # First landed result: SIGTERM-equivalent for worker one,
                # and a healthy worker joins to finish the remainder.
                if not drain.is_set():
                    drain.set()
                    second["thread"] = _start_worker_thread(executor)

            executor.progress_hook = on_result
            distributed = run_campaign(campaign, executor=executor)
            first.join(JOIN_TIMEOUT)
            second["thread"].join(JOIN_TIMEOUT)
        assert not first.is_alive()
        assert holder["code"] == 0
        message = stream.getvalue()
        assert "SIGTERM" in message and "exiting" in message
        assert _deterministic(distributed) == _deterministic(serial)

    def test_subprocess_sigterm_drains_and_campaign_completes(self):
        """The real signal path: SIGTERM a ``repro worker`` process mid-
        campaign; it must exit 0 (not die on the default handler) while
        the campaign completes on a second worker."""
        campaign = _campaign(ns=(300, 340, 380, 420))
        serial = run_campaign(campaign)
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        with DistributedExecutor(lease_timeout=15.0) as executor:
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--connect", f"{executor.host}:{executor.port}",
                    "--connect-retry", "30",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
            state = {}

            def on_result(position, payload):
                if "signalled" not in state:
                    state["signalled"] = True
                    proc.send_signal(signal.SIGTERM)
                    state["thread"] = _start_worker_thread(executor)

            executor.progress_hook = on_result
            try:
                distributed = run_campaign(campaign, executor=executor)
                code = proc.wait(timeout=JOIN_TIMEOUT)
                stderr = proc.stderr.read()
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)
                if "thread" in state:
                    state["thread"].join(JOIN_TIMEOUT)
        assert state.get("signalled")
        assert code == 0, stderr
        assert "SIGTERM" in stderr and "exiting" in stderr
        assert _deterministic(distributed) == _deterministic(serial)

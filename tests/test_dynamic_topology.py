"""Tests for :class:`ChurnTopology` and the engines' epoch-cut contract.

Covers the epoch purity rule (advance_to replays identically forwards,
backwards, or from scratch), the rewire/rebirth churn semantics against
the documented tagged-stream contract, the registry / spec plumbing of
``dynamic-ring`` / ``dynamic-torus``, and a per-tick reference pin that
replays the sequential engine's block schedule — epoch cuts included —
tick by tick on the same draws.
"""

import json

import numpy as np
import pytest

from repro.api import TOPOLOGIES, SimulationSpec, simulate
from repro.api.cache import spec_key
from repro.core.exceptions import TopologyError
from repro.core.rng import as_generator
from repro.engine.sequential import SequentialEngine
from repro.graphs.complete import CompleteGraph
from repro.graphs.dynamic import _EPOCH_TAG, ChurnTopology
from repro.graphs.sparse import ring, torus
from repro.protocols.two_choices import TwoChoicesSequential


def _churned_ring(n=64, rate=0.3, **kwargs) -> ChurnTopology:
    return ChurnTopology(ring(n), rate, **kwargs)


class TestAdvanceTo:
    def test_epoch_is_pure_function_of_index(self):
        stepwise = _churned_ring(churn_seed=7)
        direct = _churned_ring(churn_seed=7)
        for epoch in range(6):
            stepwise.advance_to(epoch)
        direct.advance_to(5)
        np.testing.assert_array_equal(stepwise._flat, direct._flat)

    def test_backwards_resets_and_replays(self):
        topo = _churned_ring(churn_seed=7)
        topo.advance_to(7)
        topo.advance_to(3)
        fresh = _churned_ring(churn_seed=7)
        fresh.advance_to(3)
        assert topo.epoch == 3
        np.testing.assert_array_equal(topo._flat, fresh._flat)

    def test_epoch_zero_is_base_graph(self):
        base = ring(64)
        topo = ChurnTopology(ring(64), 0.5, churn_seed=1)
        topo.advance_to(4)
        assert not np.array_equal(topo._flat, base._flat)
        topo.advance_to(0)
        np.testing.assert_array_equal(topo._flat, base._flat)

    def test_negative_epoch_rejected(self):
        with pytest.raises(TopologyError, match="non-negative"):
            _churned_ring().advance_to(-1)


class TestChurnRules:
    def test_degrees_frozen_and_no_self_loops(self):
        topo = ChurnTopology(torus(8, 8), 1.0, churn_seed=3)
        base_degrees = torus(8, 8)._degrees
        for epoch in (1, 5, 9):
            topo.advance_to(epoch)
            np.testing.assert_array_equal(topo._degrees, base_degrees)
            assert not np.any(topo._flat == topo._slot_owner)

    @pytest.mark.parametrize("rule", ["rewire", "rebirth"])
    def test_zero_rate_is_static(self, rule):
        topo = ChurnTopology(ring(48), 0.0, churn_seed=2, rule=rule)
        topo.advance_to(10)
        np.testing.assert_array_equal(topo._flat, ring(48)._flat)

    @pytest.mark.parametrize("rule", ["rewire", "rebirth"])
    def test_epoch_draws_follow_tagged_stream_contract(self, rule):
        """Pin the documented per-epoch seeding: epoch e draws from
        ``SeedSequence(churn_seed, spawn_key=(TAG, e))`` — mask first,
        then owner-shifted uniform redraws over the masked slots."""
        n, rate, seed = 80, 0.4, 17
        topo = ChurnTopology(ring(n), rate, churn_seed=seed, rule=rule)
        topo.advance_to(1)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(_EPOCH_TAG, 1))
        )
        owners = np.repeat(np.arange(n, dtype=np.int64), ring(n)._degrees)
        if rule == "rewire":
            mask = rng.random(owners.size) < rate
        else:
            mask = (rng.random(n) < rate)[owners]
        expected = ring(n)._flat.copy()
        draws = rng.integers(0, n - 1, size=int(mask.sum()))
        draws += draws >= owners[mask]
        expected[mask] = draws
        np.testing.assert_array_equal(topo._flat, expected)

    def test_rebirth_changes_are_row_aligned(self):
        n = 200
        topo = ChurnTopology(ring(n), 0.3, churn_seed=5, rule="rebirth")
        topo.advance_to(1)
        changed = topo._flat != ring(n)._flat
        rows = changed.reshape(n, 2)  # ring is 2-regular
        # A surviving node's row is untouched; reborn rows may keep a
        # slot by coincidence, but some row must change in both slots
        # (rewire at this rate would mostly flip single slots).
        assert np.any(rows.all(axis=1))

    def test_validation(self):
        with pytest.raises(TopologyError, match="churn_rate"):
            ChurnTopology(ring(16), 1.5)
        with pytest.raises(TopologyError, match="rule"):
            ChurnTopology(ring(16), 0.1, rule="mutate")
        with pytest.raises(TopologyError, match="epoch_ticks"):
            ChurnTopology(ring(16), 0.1, epoch_ticks=0)
        with pytest.raises(TopologyError, match="AdjacencyTopology"):
            ChurnTopology(CompleteGraph(16), 0.1)


class TestEngineEpochCuts:
    def test_sequential_engine_matches_per_tick_reference(self):
        """Replay the engine's block schedule — epoch cuts included —
        as a per-tick loop on the same presampled draws; the batched
        run must be value-identical (hazard-free-prefix exactness on a
        per-epoch-constant graph)."""
        n, epoch_ticks, max_ticks, seed = 300, 37, 160, 5
        protocol = TwoChoicesSequential()
        colors0 = np.ones(n, dtype=np.int64)
        colors0[: n // 2] = 0

        engine_topo = ChurnTopology(ring(n), 0.1, epoch_ticks=epoch_ticks, churn_seed=11)
        result = SequentialEngine(protocol, engine_topo).run(
            colors0.copy(), max_ticks=max_ticks, seed=seed
        )
        assert result.rounds == max_ticks

        rng = as_generator(seed)
        state = protocol.make_state(colors0.copy(), 2)
        topo = ChurnTopology(ring(n), 0.1, epoch_ticks=epoch_ticks, churn_seed=11)
        topo.advance_to(0)
        samples = protocol.tick_footprint.samples
        check_every = n
        ticks = 0
        while ticks < max_ticks:
            to_check = check_every - ticks % check_every
            block = min(8192, max_ticks - ticks, to_check)
            topo.advance_to(ticks // epoch_ticks)
            block = min(block, epoch_ticks - ticks % epoch_ticks)
            nodes = rng.integers(0, n, size=block)
            targets = topo.sample_neighbors_block(nodes, samples, rng)
            for i in range(block):
                protocol.tick_apply(state, int(nodes[i]), state.colors[targets[i]])
            ticks += block
        np.testing.assert_array_equal(np.asarray(result.final.counts), state.counts())

    def test_shared_topology_object_resets_between_runs(self):
        """Replications share one topology object; the run-start
        ``advance_to(0)`` reset must make them independent of whatever
        epoch the previous run left behind."""
        n = 200
        protocol = TwoChoicesSequential()
        colors0 = np.ones(n, dtype=np.int64)
        colors0[: n // 2 + 20] = 0
        shared = ChurnTopology(ring(n), 0.2, epoch_ticks=50, churn_seed=9)
        engine = SequentialEngine(protocol, shared)
        first = engine.run(colors0.copy(), max_ticks=400, seed=3)
        assert shared.epoch > 0  # the run actually advanced the clock
        second = engine.run(colors0.copy(), max_ticks=400, seed=3)
        fresh = SequentialEngine(
            protocol, ChurnTopology(ring(n), 0.2, epoch_ticks=50, churn_seed=9)
        ).run(colors0.copy(), max_ticks=400, seed=3)
        for other in (second, fresh):
            assert first.rounds == other.rounds
            assert tuple(first.final.counts) == tuple(other.final.counts)


class TestRegistryAndSpec:
    def test_dynamic_ring_builds(self):
        topo = TOPOLOGIES.build(
            "dynamic-ring", {"churn_rate": 0.2, "epoch_ticks": 50, "churn_seed": 3}, 64
        )
        assert isinstance(topo, ChurnTopology)
        assert topo.n == 64
        assert topo.epoch_ticks == 50
        assert topo.rule == "rewire"

    def test_dynamic_torus_default_rows(self):
        topo = TOPOLOGIES.build("dynamic-torus", {"churn_rate": 0.1, "rule": "rebirth"}, 60)
        assert isinstance(topo, ChurnTopology)
        assert topo.n == 60
        assert topo.rule == "rebirth"
        # 60 factorises most squarely as 6 x 10: every node has 4 slots.
        np.testing.assert_array_equal(topo._degrees, np.full(60, 4))

    def test_epoch_ticks_defaults_to_n(self):
        topo = TOPOLOGIES.build("dynamic-ring", {"churn_rate": 0.1}, 48)
        assert topo.epoch_ticks == 48

    def test_spec_round_trip_and_key(self):
        spec = SimulationSpec(
            protocol="three-majority",
            n=120,
            topology="dynamic-ring",
            topology_params={"churn_rate": 0.3, "epoch_ticks": 60, "rule": "rebirth"},
            initial="two-colors",
            initial_params={"gap": 20},
            reps=2,
            seed=99,
            max_steps=3000,
        )
        hopped = SimulationSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert spec_key(hopped) == spec_key(spec)
        static = spec.replace(topology="ring", topology_params={})
        assert spec_key(static) != spec_key(spec)

    def test_simulate_is_deterministic(self):
        spec = SimulationSpec(
            protocol="two-choices",
            n=150,
            topology="dynamic-ring",
            topology_params={"churn_rate": 0.2, "epoch_ticks": 75},
            initial="two-colors",
            initial_params={"gap": 30},
            reps=2,
            seed=41,
            max_steps=6000,
        )
        first = simulate(spec)
        second = simulate(spec)
        assert [run.to_dict() for run in first.runs] == [
            run.to_dict() for run in second.runs
        ]

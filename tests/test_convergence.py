"""Tests for repro.analysis.convergence."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    per_phase_ratio_growth,
    ratio_trace,
    synchrony_summary,
    time_to_fraction,
)
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError
from repro.core.results import RunResult, Trace


def _trace(snapshots):
    trace = Trace()
    for t, counts in snapshots:
        trace.record(t, counts)
    return trace


class TestTimeToFraction:
    def test_finds_first_crossing(self):
        trace = _trace([(0, [5, 5]), (1, [7, 3]), (2, [9, 1])])
        assert time_to_fraction(trace, 0.7) == 1.0
        assert time_to_fraction(trace, 0.9) == 2.0

    def test_none_when_never_reached(self):
        trace = _trace([(0, [5, 5]), (1, [6, 4])])
        assert time_to_fraction(trace, 0.95) is None

    def test_empty_trace(self):
        assert time_to_fraction(Trace(), 0.5) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            time_to_fraction(Trace(), 0.0)


class TestRatioTrace:
    def test_basic(self):
        trace = _trace([(0, [6, 3, 1]), (1, [8, 2, 0])])
        ratios = ratio_trace(trace)
        assert ratios[0] == pytest.approx(2.0)
        assert ratios[1] == pytest.approx(4.0)

    def test_infinite_when_c2_zero(self):
        trace = _trace([(0, [10, 0])])
        assert np.isinf(ratio_trace(trace)[0])

    def test_single_color(self):
        trace = _trace([(0, [10])])
        assert np.isinf(ratio_trace(trace)[0])

    def test_empty(self):
        assert ratio_trace(Trace()).size == 0


class TestPerPhaseGrowth:
    def test_quadratic_series(self):
        ratios = [1.2, 1.2**2, 1.2**4, 1.2**8]
        growth = per_phase_ratio_growth(ratios)
        assert len(growth) == 3
        assert all(g == pytest.approx(2.0) for g in growth)

    def test_stops_at_saturation(self):
        ratios = [1.5, 2.25, float("inf")]
        growth = per_phase_ratio_growth(ratios)
        assert len(growth) == 1

    def test_stops_below_one(self):
        assert per_phase_ratio_growth([1.0, 2.0]) == []

    def test_empty(self):
        assert per_phase_ratio_growth([]) == []


class TestSynchronySummary:
    def _result_with_spread(self, entries):
        return RunResult(
            converged=True,
            winner=0,
            rounds=10,
            parallel_time=10.0,
            initial=ColorConfiguration([5, 5]),
            final=ColorConfiguration([10, 0]),
            metadata={"spread_trace": entries},
        )

    def test_aggregates(self):
        entries = [
            {"time": 1.0, "spread": 10, "spread_core": 5, "poor_fraction": 0.1},
            {"time": 2.0, "spread": 20, "spread_core": 8, "poor_fraction": 0.3},
        ]
        summary = synchrony_summary(self._result_with_spread(entries))
        assert summary["samples"] == 2
        assert summary["max_spread"] == 20.0
        assert summary["mean_spread"] == 15.0
        assert summary["max_core_spread"] == 8.0
        assert summary["max_poor_fraction"] == 0.3

    def test_time_filter(self):
        entries = [
            {"time": 1.0, "spread": 10, "spread_core": 5, "poor_fraction": 0.1},
            {"time": 50.0, "spread": 99, "spread_core": 90, "poor_fraction": 0.9},
        ]
        summary = synchrony_summary(self._result_with_spread(entries), until_parallel_time=10.0)
        assert summary["samples"] == 1
        assert summary["max_spread"] == 10.0

    def test_empty_trace(self):
        summary = synchrony_summary(self._result_with_spread([]))
        assert summary["samples"] == 0
        assert summary["max_spread"] is None

"""End-to-end coverage for the JSON result store and the persisted
report pipeline (`run --store` -> `show` / `report`)."""

import json

import pytest

from repro.bench.harness import ExperimentReport
from repro.bench.report import render_report
from repro.bench.store import ResultStore
from repro.core.exceptions import ExperimentError


def _report(eid="T99", checks=None):
    return ExperimentReport(
        experiment_id=eid,
        title="synthetic report",
        claim="round trips survive the store",
        headers=["x", "y"],
        rows=[[1, 2.5], ["a", None]],
        checks=checks if checks is not None else {"shape": True},
        notes=["a note"],
        params={"n": 100, "trials": 3},
        elapsed_seconds=0.25,
    )


class TestResultStoreRoundTrip:
    def test_save_load_is_identity_on_payload(self, tmp_path):
        store = ResultStore(str(tmp_path / "results"))
        payload = _report().to_dict()
        path = store.save("T99", payload)
        assert path.exists()
        assert store.load("T99") == payload

    def test_payload_is_valid_json_on_disk(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("T1", _report("T1").to_dict())
        with open(tmp_path / "T1.json", encoding="utf-8") as handle:
            assert json.load(handle)["experiment_id"] == "T1"

    def test_save_overwrites(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("T1", {"experiment_id": "T1", "version": 1})
        store.save("T1", {"experiment_id": "T1", "version": 2})
        assert store.load("T1")["version"] == 2

    def test_exists_and_list_ids(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert not store.exists("T1")
        assert store.list_ids() == []
        store.save("T2", _report("T2").to_dict())
        store.save("T1", _report("T1").to_dict())
        assert store.exists("T1")
        assert store.list_ids() == ["T1", "T2"]

    def test_missing_load_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no stored result"):
            ResultStore(str(tmp_path)).load("T404")

    def test_slashes_in_ids_are_sanitised(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("a/b", {"experiment_id": "a/b"})
        assert (tmp_path / "a_b.json").exists()
        assert store.load("a/b")["experiment_id"] == "a/b"

    def test_empty_id_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="non-empty"):
            ResultStore(str(tmp_path)).save("", {})


class TestRenderReportFromStore:
    def test_report_includes_every_stored_experiment(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("T1", _report("T1").to_dict())
        store.save("T2", _report("T2", checks={"shape": False}).to_dict())
        text = render_report(store, title="store test")
        assert "store test" in text
        assert "T1" in text and "T2" in text
        assert "FAIL" in text  # T2's failing check is surfaced

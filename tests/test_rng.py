"""Tests for repro.core.rng."""

import numpy as np
import pytest

from repro.core.rng import as_generator, random_seed, spawn_seeds, split


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=10)
        b = as_generator(2).integers(0, 1_000_000, size=10)
        assert not (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(7))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")

    def test_numpy_integer_accepted(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)


class TestSplit:
    def test_same_key_same_stream(self):
        a = split(42, "clock").integers(0, 10**9, size=5)
        b = split(42, "clock").integers(0, 10**9, size=5)
        assert (a == b).all()

    def test_different_keys_differ(self):
        a = split(42, "clock").integers(0, 10**9, size=5)
        b = split(42, "sampling").integers(0, 10**9, size=5)
        assert not (a == b).all()

    def test_child_differs_from_parent(self):
        parent = as_generator(42).integers(0, 10**9, size=5)
        child = split(42, "clock").integers(0, 10**9, size=5)
        assert not (parent == child).all()

    def test_split_from_generator(self):
        gen = np.random.default_rng(3)
        child = split(gen, "anything")
        assert isinstance(child, np.random.Generator)


class TestSpawnSeeds:
    def test_count_and_type(self):
        seeds = spawn_seeds(7, 5)
        assert len(seeds) == 5
        assert all(isinstance(s, int) for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_zero_count(self):
        assert spawn_seeds(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)


def test_random_seed_is_int():
    seed = random_seed()
    assert isinstance(seed, int)
    assert seed >= 0

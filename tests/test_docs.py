"""Documentation consistency gates.

DESIGN.md promises an experiment index and EXPERIMENTS.md promises the
paper-vs-measured record; these tests keep both in sync with the
registry and the benchmark directory as the project evolves.
"""

from pathlib import Path

import pytest

from repro.bench import experiment_ids

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def experiments_text():
    return (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme_text():
    return (ROOT / "README.md").read_text(encoding="utf-8")


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (ROOT / name).exists(), f"{name} is missing"


def test_design_indexes_every_experiment(design_text):
    for eid in experiment_ids():
        assert f"| {eid} |" in design_text, f"DESIGN.md lacks an index row for {eid}"


def test_experiments_records_every_experiment(experiments_text):
    for eid in experiment_ids():
        assert eid in experiments_text, f"EXPERIMENTS.md does not mention {eid}"


def test_every_experiment_has_a_benchmark_target():
    bench_dir = ROOT / "benchmarks"
    stems = {p.stem for p in bench_dir.glob("bench_*.py")}
    for eid in experiment_ids():
        prefix = f"bench_{eid.lower()}_"
        assert any(stem.startswith(prefix) for stem in stems), f"no benchmark file for {eid}"


def test_design_declares_paper_identity_check(design_text):
    assert "Paper identity check" in design_text
    assert "matches the target paper" in design_text


def test_readme_mentions_all_examples(readme_text):
    examples = (ROOT / "examples").glob("*.py")
    for example in examples:
        assert example.name in readme_text, f"README.md does not mention {example.name}"


def test_design_documents_every_substitution(design_text):
    assert "Substitution record" in design_text


def test_examples_reference_real_api():
    """Every example imports successfully (compile check without run)."""
    import py_compile

    for example in (ROOT / "examples").glob("*.py"):
        py_compile.compile(str(example), doraise=True)

"""API quality gates: documentation and export hygiene.

These tests keep the library honest as it grows: every public module,
class and function must carry a docstring, and every name listed in an
``__all__`` must actually exist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    module.name
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not module.name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    names = exported if exported is not None else [
        n for n in dir(module) if not n.startswith("_")
    ]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", "").startswith("repro"):
            assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{name} lacks a docstring"


def test_package_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_public_classes_have_documented_public_methods():
    """Spot-check the core API surface: public methods on the flagship
    classes carry docstrings."""
    from repro import AsyncPluralityConsensus, ColorConfiguration, CountsEngine, SequentialEngine

    for cls in (AsyncPluralityConsensus, ColorConfiguration, CountsEngine, SequentialEngine):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__ and member.__doc__.strip(), f"{cls.__name__}.{name} lacks a docstring"

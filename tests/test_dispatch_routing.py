"""The DESIGN.md engine routing table, executable.

One parametrized test per cell of `fastest_engine`'s routing table:
protocol family x model x topology x n_reps, asserting the *exact*
engine class returned (not just "some engine that runs").  If a new
fast path changes the routing, this file is the spec that must change
with it.
"""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.engine.continuous import ContinuousEngine
from repro.engine.counts import CountsEngine
from repro.engine.counts_async import CountsContinuousEngine, CountsSequentialEngine
from repro.engine.delays import ExponentialDelay, FixedDelay
from repro.engine.dispatch import fastest_engine
from repro.engine.ensemble import (
    EnsembleCountsContinuousEngine,
    EnsembleCountsEngine,
    EnsembleCountsSequentialEngine,
)
from repro.engine.dispatch import SPARSE_SEQUENTIAL_CROSSOVER
from repro.engine.sequential import SequentialEngine
from repro.engine.sparse_async import SparseContinuousEngine, SparseSequentialEngine
from repro.engine.synchronous import SynchronousEngine
from repro.graphs.complete import CompleteGraph
from repro.graphs.dynamic import ChurnTopology
from repro.graphs.sparse import ring
from repro.protocols.async_plurality import AsyncPluralityProtocol
from repro.protocols.faults import ByzantineProtocol, StubbornProtocol
from repro.protocols.lossy import LossyProtocol
from repro.protocols.one_extra_bit import OneExtraBitCounts, OneExtraBitSynchronous
from repro.protocols.three_majority import ThreeMajorityCounts, ThreeMajoritySequential
from repro.protocols.two_choices import (
    TwoChoicesCounts,
    TwoChoicesSequential,
    TwoChoicesSequentialCounts,
    TwoChoicesSynchronous,
)
from repro.protocols.undecided_state import UndecidedStateCounts, UndecidedStateSequential
from repro.protocols.voter import VoterCounts, VoterSequential

K_N = CompleteGraph(64)
RING = ring(64)
# A ring at/above the sequential-model size crossover: large enough
# that the hazard-batched engine's block amortisation wins (CSR rings
# are cheap to build at this size).
BIG_RING = ring(SPARSE_SEQUENTIAL_CROSSOVER)
DYNAMIC_RING = ChurnTopology(ring(64), churn_rate=0.1)
BIG_DYNAMIC_RING = ChurnTopology(ring(SPARSE_SEQUENTIAL_CROSSOVER), churn_rate=0.1)


def _lossy():
    return LossyProtocol(TwoChoicesSequential(), 0.2)


def _stubborn():
    return StubbornProtocol(TwoChoicesSequential(), 0.1)


def _byzantine():
    return ByzantineProtocol(TwoChoicesSequential(), 0.1)


def _stubborn_lossy():
    return StubbornProtocol(LossyProtocol(TwoChoicesSequential(), 0.2), 0.1)

# (case id, protocol factory, model, topology, delay, n_reps, expected engine class)
ROUTING_TABLE = [
    # --- synchronous model ------------------------------------------------
    ("counts/sync/K_n/1", TwoChoicesCounts, "synchronous", K_N, None, 1, CountsEngine),
    ("counts/sync/K_n/R", TwoChoicesCounts, "synchronous", K_N, None, 8, EnsembleCountsEngine),
    ("counts-voter/sync/K_n/R", VoterCounts, "synchronous", K_N, None, 8, EnsembleCountsEngine),
    ("counts-3maj/sync/K_n/R", ThreeMajorityCounts, "synchronous", K_N, None, 8, EnsembleCountsEngine),
    ("counts-usd/sync/K_n/R", UndecidedStateCounts, "synchronous", K_N, None, 8, EnsembleCountsEngine),
    # OneExtraBit has no ensemble round hooks: the single-run counts
    # engine is returned even when the caller asks for replications.
    ("counts-oeb/sync/K_n/1", OneExtraBitCounts, "synchronous", K_N, None, 1, CountsEngine),
    ("counts-oeb/sync/K_n/R", OneExtraBitCounts, "synchronous", K_N, None, 8, CountsEngine),
    # Agent-level synchronous protocols run the reference engine anywhere.
    ("agent/sync/K_n/1", TwoChoicesSynchronous, "synchronous", K_N, None, 1, SynchronousEngine),
    ("agent/sync/ring/1", TwoChoicesSynchronous, "synchronous", RING, None, 1, SynchronousEngine),
    ("agent/sync/ring/R", TwoChoicesSynchronous, "synchronous", RING, None, 8, SynchronousEngine),
    ("agent-oeb/sync/ring/1", OneExtraBitSynchronous, "synchronous", RING, None, 1, SynchronousEngine),
    # --- sequential model -------------------------------------------------
    # Tick protocols with a counts companion upgrade on K_n ...
    ("seq/K_n/1", TwoChoicesSequential, "sequential", K_N, None, 1, CountsSequentialEngine),
    ("seq/K_n/R", TwoChoicesSequential, "sequential", K_N, None, 8, EnsembleCountsSequentialEngine),
    ("seq-voter/K_n/1", VoterSequential, "sequential", K_N, None, 1, CountsSequentialEngine),
    ("seq-voter/K_n/R", VoterSequential, "sequential", K_N, None, 8, EnsembleCountsSequentialEngine),
    ("seq-3maj/K_n/R", ThreeMajoritySequential, "sequential", K_N, None, 8, EnsembleCountsSequentialEngine),
    ("seq-usd/K_n/R", UndecidedStateSequential, "sequential", K_N, None, 8, EnsembleCountsSequentialEngine),
    # ... and counts tick protocols route there directly.
    ("seq-counts/K_n/1", TwoChoicesSequentialCounts, "sequential", K_N, None, 1, CountsSequentialEngine),
    ("seq-counts/K_n/R", TwoChoicesSequentialCounts, "sequential", K_N, None, 8, EnsembleCountsSequentialEngine),
    # Off K_n a declared tick footprint routes by size: below the
    # crossover the zip-apply hooks path of SequentialEngine wins the
    # mixed phase, from the crossover up the hazard-batched engine's
    # block amortisation wins (see the dispatch crossover note).  Both
    # are single-run engines; run_replicated handles reps.
    ("seq/ring/1", TwoChoicesSequential, "sequential", RING, None, 1, SequentialEngine),
    ("seq/ring/R", TwoChoicesSequential, "sequential", RING, None, 8, SequentialEngine),
    ("seq-voter/ring/1", VoterSequential, "sequential", RING, None, 1, SequentialEngine),
    ("seq-3maj/ring/1", ThreeMajoritySequential, "sequential", RING, None, 1, SequentialEngine),
    ("seq-usd/ring/1", UndecidedStateSequential, "sequential", RING, None, 1, SequentialEngine),
    ("seq/big-ring/1", TwoChoicesSequential, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    ("seq/big-ring/R", TwoChoicesSequential, "sequential", BIG_RING, None, 8, SparseSequentialEngine),
    ("seq-voter/big-ring/1", VoterSequential, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    ("seq-3maj/big-ring/1", ThreeMajoritySequential, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    ("seq-usd/big-ring/1", UndecidedStateSequential, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    # No footprint (phase-dependent sampling): the per-tick reference
    # engine remains the only exact option off K_n.
    ("seq-async-plurality/ring/1", AsyncPluralityProtocol, "sequential", RING, None, 1, SequentialEngine),
    # No counts companion (the phased protocol): agent engine even on K_n.
    ("seq-async-plurality/K_n/1", AsyncPluralityProtocol, "sequential", K_N, None, 1, SequentialEngine),
    ("seq-async-plurality/K_n/R", AsyncPluralityProtocol, "sequential", K_N, None, 8, SequentialEngine),
    # --- fault wrappers ---------------------------------------------------
    # Wrappers never expose a counts companion (per-node masks have no
    # counts-level law), so even on K_n the agent engines run.  Lossy
    # has no footprint — its sampling depends on the loss draws — so it
    # stays on the per-tick SequentialEngine at every size; the
    # mask-based wrappers delegate the inner footprint and ride the
    # size crossover like the bare protocol.
    ("fault-lossy/K_n/1", _lossy, "sequential", K_N, None, 1, SequentialEngine),
    ("fault-lossy/ring/1", _lossy, "sequential", RING, None, 1, SequentialEngine),
    ("fault-lossy/big-ring/1", _lossy, "sequential", BIG_RING, None, 1, SequentialEngine),
    ("fault-lossy/ring/cont", _lossy, "continuous", RING, None, 1, ContinuousEngine),
    ("fault-stubborn/K_n/1", _stubborn, "sequential", K_N, None, 1, SequentialEngine),
    ("fault-stubborn/ring/1", _stubborn, "sequential", RING, None, 1, SequentialEngine),
    ("fault-stubborn/big-ring/1", _stubborn, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    ("fault-stubborn/ring/cont", _stubborn, "continuous", RING, None, 1, SparseContinuousEngine),
    ("fault-byzantine/big-ring/1", _byzantine, "sequential", BIG_RING, None, 1, SparseSequentialEngine),
    # Composition inherits the innermost footprint-less seam: a lossy
    # layer anywhere in the stack pins the per-tick engine.
    ("fault-stubborn-lossy/big-ring/1", _stubborn_lossy, "sequential", BIG_RING, None, 1, SequentialEngine),
    # --- dynamic topologies -----------------------------------------------
    # The epoch clock rides the sequential engines' block loops, and the
    # size crossover applies unchanged (ChurnTopology keeps the CSR
    # presampling fast path).
    ("dynamic-ring/seq/1", TwoChoicesSequential, "sequential", DYNAMIC_RING, None, 1, SequentialEngine),
    ("dynamic-ring/seq/R", TwoChoicesSequential, "sequential", DYNAMIC_RING, None, 8, SequentialEngine),
    ("dynamic-big-ring/seq/1", TwoChoicesSequential, "sequential", BIG_DYNAMIC_RING, None, 1, SparseSequentialEngine),
    ("dynamic-ring/seq/stubborn", _stubborn, "sequential", DYNAMIC_RING, None, 1, SequentialEngine),
    # --- continuous model -------------------------------------------------
    ("cont/K_n/1", TwoChoicesSequential, "continuous", K_N, None, 1, CountsContinuousEngine),
    ("cont/K_n/R", TwoChoicesSequential, "continuous", K_N, None, 8, EnsembleCountsContinuousEngine),
    ("cont-counts/K_n/1", TwoChoicesSequentialCounts, "continuous", K_N, None, 1, CountsContinuousEngine),
    ("cont/ring/1", TwoChoicesSequential, "continuous", RING, None, 1, SparseContinuousEngine),
    ("cont-async-plurality/ring/1", AsyncPluralityProtocol, "continuous", RING, None, 1, ContinuousEngine),
    # A zero delay model keeps the batched fast paths ...
    ("cont-zero-delay/K_n/1", TwoChoicesSequential, "continuous", K_N, FixedDelay(0.0), 1, CountsContinuousEngine),
    ("cont-zero-delay/ring/1", TwoChoicesSequential, "continuous", RING, FixedDelay(0.0), 1, SparseContinuousEngine),
    # ... a real one forces the event-queue reference engine.
    ("cont-delay/K_n/1", TwoChoicesSequential, "continuous", K_N, ExponentialDelay(1.0), 1, ContinuousEngine),
    ("cont-delay/K_n/R", TwoChoicesSequential, "continuous", K_N, ExponentialDelay(1.0), 8, ContinuousEngine),
    ("cont-delay/ring/1", TwoChoicesSequential, "continuous", RING, ExponentialDelay(1.0), 1, ContinuousEngine),
    ("cont-async-plurality/K_n/1", AsyncPluralityProtocol, "continuous", K_N, None, 1, ContinuousEngine),
]


@pytest.mark.parametrize(
    "factory,model,topology,delay,n_reps,expected",
    [pytest.param(*row[1:], id=row[0]) for row in ROUTING_TABLE],
)
def test_routing_table_cell(factory, model, topology, delay, n_reps, expected):
    engine = fastest_engine(factory(), topology, model=model, delay_model=delay, n_reps=n_reps)
    assert type(engine) is expected


# (case id, protocol factory, model, topology, delay, n_reps, error match)
REJECTION_TABLE = [
    ("counts-needs-K_n", TwoChoicesCounts, "synchronous", RING, None, 1, "needs K_n"),
    ("seq-counts-needs-K_n", TwoChoicesSequentialCounts, "sequential", RING, None, 1, "needs K_n"),
    ("sync-rejects-delays", TwoChoicesCounts, "synchronous", K_N, ExponentialDelay(1.0), 1, "delay"),
    ("seq-rejects-delays", TwoChoicesSequential, "sequential", K_N, ExponentialDelay(1.0), 1, "delay"),
    ("counts-protocol-lacks-sync", TwoChoicesSequentialCounts, "synchronous", K_N, None, 1, "synchronous"),
    ("sync-protocol-lacks-seq", TwoChoicesSynchronous, "sequential", K_N, None, 1, "sequential"),
    ("unknown-model", TwoChoicesSequential, "adiabatic", K_N, None, 1, "unknown model"),
    ("bad-n-reps", TwoChoicesSequential, "sequential", K_N, None, 0, "n_reps"),
    # Dynamic topologies advance on a tick-epoch clock: only the
    # sequential engines cut their blocks at epoch boundaries.
    ("dynamic-rejects-continuous", TwoChoicesSequential, "continuous", DYNAMIC_RING, None, 1, "tick-epoch"),
    ("dynamic-rejects-synchronous", TwoChoicesSynchronous, "synchronous", DYNAMIC_RING, None, 1, "tick-epoch"),
]


@pytest.mark.parametrize(
    "factory,model,topology,delay,n_reps,match",
    [pytest.param(*row[1:], id=row[0]) for row in REJECTION_TABLE],
)
def test_routing_table_rejections(factory, model, topology, delay, n_reps, match):
    with pytest.raises(ConfigurationError, match=match):
        fastest_engine(factory(), topology, model=model, delay_model=delay, n_reps=n_reps)

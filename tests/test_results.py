"""Tests for repro.core.results."""

import json

import numpy as np
import pytest

from repro.core.colors import ColorConfiguration
from repro.core.results import RunResult, Trace, TracePoint


class TestTrace:
    def test_record_and_lengths(self):
        trace = Trace()
        trace.record(0, [5, 5])
        trace.record(1.5, [7, 3])
        assert len(trace) == 2
        assert trace.times().tolist() == [0.0, 1.5]

    def test_count_matrix(self):
        trace = Trace()
        trace.record(0, [5, 5])
        trace.record(1, [8, 2])
        matrix = trace.count_matrix()
        assert matrix.shape == (2, 2)
        assert matrix[1].tolist() == [8, 2]

    def test_empty_matrix(self):
        assert Trace().count_matrix().size == 0

    def test_bias_trace(self):
        trace = Trace()
        trace.record(0, [5, 5, 0])
        trace.record(1, [8, 2, 0])
        assert trace.bias_trace().tolist() == [0, 6]

    def test_bias_trace_single_color(self):
        trace = Trace()
        trace.record(0, [10])
        assert trace.bias_trace().tolist() == [10]

    def test_point_configuration(self):
        point = TracePoint(time=1.0, counts=(3, 2))
        assert point.configuration.c1 == 3

    def test_iteration(self):
        trace = Trace()
        trace.record(0, [1, 2])
        assert [p.time for p in trace] == [0.0]


class TestRunResult:
    def _result(self, converged=True, winner=0, initial=(6, 4), final=(10, 0)):
        return RunResult(
            converged=converged,
            winner=winner,
            rounds=5,
            parallel_time=5.0,
            initial=ColorConfiguration(list(initial)),
            final=ColorConfiguration(list(final)),
        )

    def test_plurality_preserved(self):
        assert self._result().plurality_preserved

    def test_plurality_not_preserved_wrong_winner(self):
        assert not self._result(winner=1, final=(0, 10)).plurality_preserved

    def test_plurality_not_preserved_when_unconverged(self):
        assert not self._result(converged=False, winner=None).plurality_preserved

    def test_plurality_undefined_for_tied_start(self):
        assert not self._result(initial=(5, 5)).plurality_preserved

    def test_to_dict_json_serialisable(self):
        result = self._result()
        result.metadata["numpy_value"] = np.int64(3)
        result.metadata["array"] = np.array([1.5, 2.5])
        result.metadata["nested"] = {"flag": np.bool_(True)}
        payload = json.dumps(result.to_dict())
        decoded = json.loads(payload)
        assert decoded["winner"] == 0
        assert decoded["metadata"]["numpy_value"] == 3
        assert decoded["metadata"]["array"] == [1.5, 2.5]
        assert decoded["metadata"]["nested"]["flag"] is True

    def test_to_dict_fields(self):
        payload = self._result().to_dict()
        assert payload["initial_counts"] == [6, 4]
        assert payload["final_counts"] == [10, 0]
        assert payload["plurality_preserved"] is True
        assert payload["rounds"] == 5

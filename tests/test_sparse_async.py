"""The sparse-topology hazard-batched fast path.

Four layers of guarantees, mirroring the exactness argument in
``repro/core/hazard.py`` and ``repro/engine/sparse_async.py``:

1. *Unit*: ``HazardScratch.prefix_length`` on hand-built blocks,
   including write-mask and stale-epoch cases.
2. *Bit-exact pinning*: on the **same presampled draws**,
   ``apply_hazard_free`` must equal the per-tick reference loop node
   for node — exercised on adversarial graphs where collisions are the
   common case (star hub, 3-ring) for every footprint protocol, and
   for the conservative no-``tick_values`` path.
3. *Law*: the hazard-batched engines draw convergence times from the
   same distribution as the reference engines (KS permutation tests)
   for Voter / Two-Choices / 3-Majority on ring, torus and
   random-regular.
4. *Plumbing*: routing, budgets, trace and check cadences, and the
   construction fast paths (``sample_neighbors_block``, ``from_csr``,
   networkx import).
"""

import numpy as np
import pytest

from repro.analysis.statistics import ks_permutation_test
from repro.core.colors import ColorConfiguration
from repro.core.exceptions import ConfigurationError, TopologyError
from repro.core.hazard import HazardScratch, apply_hazard_free
from repro.engine import (
    ContinuousEngine,
    SequentialEngine,
    SparseContinuousEngine,
    SparseSequentialEngine,
    fastest_engine,
)
from repro.graphs.complete import CompleteGraph
from repro.graphs.families import hypercube, random_regular, star
from repro.graphs.sparse import AdjacencyTopology, ring, torus
from repro.protocols.async_plurality import AsyncPluralityProtocol
from repro.protocols.base import SequentialProtocol, TickFootprint
from repro.protocols.lossy import LossyProtocol
from repro.protocols.three_majority import ThreeMajoritySequential
from repro.protocols.two_choices import TwoChoicesSequential
from repro.protocols.undecided_state import UndecidedStateSequential
from repro.protocols.voter import VoterSequential

FOOTPRINT_PROTOCOLS = [
    TwoChoicesSequential,
    VoterSequential,
    ThreeMajoritySequential,
    UndecidedStateSequential,
]


def _reads(nodes, targets):
    nodes = np.asarray(nodes, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    return np.concatenate([nodes[:, None], targets], axis=1)


class TestHazardScratchUnit:
    def test_read_of_earlier_write_cuts(self):
        scratch = HazardScratch(10)
        # tick 2 reads node 0, written by tick 0.
        assert scratch.prefix_length(_reads([0, 1, 2], [[1], [2], [0]])) == 2

    def test_duplicate_initiator_cuts(self):
        scratch = HazardScratch(10)
        assert scratch.prefix_length(_reads([5, 5], [[1], [2]])) == 1

    def test_clean_block_passes_whole(self):
        scratch = HazardScratch(10)
        assert scratch.prefix_length(_reads([0, 1, 2], [[3], [4], [5]])) == 3

    def test_stale_epoch_is_ignored(self):
        scratch = HazardScratch(10)
        assert scratch.prefix_length(_reads([0], [[1]])) == 1
        # Node 0's stamp is from the previous call: not a hazard now.
        assert scratch.prefix_length(_reads([1, 2], [[0], [0]])) == 2

    def test_write_mask_limits_hazards(self):
        scratch = HazardScratch(10)
        reads = _reads([0, 1, 2], [[2], [3], [0]])
        # Conservatively tick 2's read of node 0 is a hazard ...
        assert scratch.prefix_length(reads) == 2
        # ... but not when tick 0 did not actually write.
        wrote = np.array([False, True, True])
        assert scratch.prefix_length(reads, wrote) == 3

    def test_non_writing_duplicate_initiators_pass(self):
        scratch = HazardScratch(10)
        reads = _reads([5, 5], [[1], [2]])
        wrote = np.array([False, False])
        assert scratch.prefix_length(reads, wrote) == 2

    def test_first_tick_never_hazardous(self):
        scratch = HazardScratch(4)
        assert scratch.prefix_length(_reads([1], [[1]])) == 1


class _ConservativeVoter(VoterSequential):
    """Footprint but no vectorised value rule: the conservative path."""

    def tick_values(self, state, own, observed):
        return None


ADVERSARIAL_TOPOLOGIES = [
    ("star", lambda: star(12)),
    ("ring3", lambda: ring(3)),
    ("torus3x3", lambda: torus(3, 3)),
    ("torus10x10", lambda: torus(10, 10)),
]


class TestBitExactPinning:
    """Same presampled draws => identical states, vectorised vs loop."""

    @pytest.mark.parametrize("proto_cls", FOOTPRINT_PROTOCOLS + [_ConservativeVoter])
    @pytest.mark.parametrize("topo_name,topo_factory", ADVERSARIAL_TOPOLOGIES)
    def test_apply_hazard_free_matches_reference_loop(self, proto_cls, topo_name, topo_factory):
        protocol = proto_cls()
        topology = topo_factory()
        n = topology.n
        rng = np.random.default_rng(42)
        colors = rng.integers(0, 3, size=n)
        state_batch = protocol.make_state(colors.copy(), 3)
        state_loop = protocol.make_state(colors.copy(), 3)
        nodes = rng.integers(0, n, size=900)
        targets = topology.sample_neighbors_block(nodes, protocol.tick_footprint.samples, rng)
        cuts = apply_hazard_free(protocol, state_batch, nodes, targets)
        assert cuts >= 0
        for i in range(len(nodes)):
            protocol.tick_apply(state_loop, int(nodes[i]), state_loop.colors[targets[i]])
        assert np.array_equal(state_batch.colors, state_loop.colors)

    def test_star_hub_forces_many_cuts_conservatively(self):
        # On a star every tick reads or writes the hub.  Without a
        # value rule every tick counts as a writer, so the batch
        # degrades towards per-tick chunks without losing exactness.
        protocol = _ConservativeVoter()
        topology = star(8)
        rng = np.random.default_rng(0)
        state = protocol.make_state(rng.integers(0, 2, size=8), 2)
        nodes = rng.integers(0, 8, size=256)
        targets = topology.sample_neighbors_block(nodes, 1, rng)
        cuts = apply_hazard_free(protocol, state, nodes, targets)
        assert cuts > 50

    def test_actual_write_tracking_avoids_cuts(self):
        # The optimistic path sees through no-op ticks: voter on a star
        # agrees with the hub quickly, after which almost nothing
        # actually writes and chunks span nearly the whole block.
        protocol = VoterSequential()
        topology = star(8)
        rng = np.random.default_rng(0)
        state = protocol.make_state(rng.integers(0, 2, size=8), 2)
        nodes = rng.integers(0, 8, size=256)
        targets = topology.sample_neighbors_block(nodes, 1, rng)
        cuts = apply_hazard_free(protocol, state, nodes, targets)
        assert cuts < 10

    def test_scratch_reuse_across_blocks(self):
        protocol = VoterSequential()
        topology = star(30)
        rng = np.random.default_rng(7)
        state_batch = protocol.make_state(rng.integers(0, 2, size=30), 2)
        state_loop = protocol.make_state(state_batch.colors.copy(), 2)
        scratch = HazardScratch(30)
        for _ in range(40):
            nodes = rng.integers(0, 30, size=64)
            targets = topology.sample_neighbors_block(nodes, 1, rng)
            apply_hazard_free(protocol, state_batch, nodes, targets, scratch)
            for i in range(len(nodes)):
                protocol.tick_apply(state_loop, int(nodes[i]), state_loop.colors[targets[i]])
            assert np.array_equal(state_batch.colors, state_loop.colors)


class TestFootprints:
    def test_declared_footprints(self):
        assert TwoChoicesSequential.tick_footprint == TickFootprint(samples=2, reads_own=False)
        assert VoterSequential.tick_footprint == TickFootprint(samples=1, reads_own=False)
        assert ThreeMajoritySequential.tick_footprint == TickFootprint(samples=3, reads_own=False)
        assert UndecidedStateSequential.tick_footprint == TickFootprint(samples=1, reads_own=True)

    def test_complex_protocols_stay_undeclared(self):
        assert AsyncPluralityProtocol.tick_footprint is None
        assert LossyProtocol.tick_footprint is None
        assert SequentialProtocol.tick_footprint is None

    def test_batch_hook_matches_loop_in_law(self):
        # seq_tick_batch (hazard path) vs the reference loop consume
        # the generator differently, so compare the tick law, not the
        # stream: mean majority count after a fixed tick block.
        protocol = TwoChoicesSequential()
        topology = torus(6, 6)
        n = topology.n
        labels = np.array([0] * 22 + [1] * 14)
        batch_majority, loop_majority = [], []
        rng_batch = np.random.default_rng(1)
        rng_loop = np.random.default_rng(2)
        for trial in range(300):
            nodes = np.random.default_rng(5000 + trial).integers(0, n, size=120)
            state = protocol.make_state(labels.copy(), 2)
            protocol.seq_tick_batch(state, nodes, topology, rng_batch)
            batch_majority.append(int(state.counts()[0]))
            state = protocol.make_state(labels.copy(), 2)
            protocol.seq_tick_batch_loop(state, nodes, topology, rng_loop)
            loop_majority.append(int(state.counts()[0]))
        sem = np.sqrt((np.var(batch_majority) + np.var(loop_majority)) / 300)
        assert abs(np.mean(batch_majority) - np.mean(loop_majority)) < 4 * sem + 1e-9


class _PerTickTwoChoices(TwoChoicesSequential):
    seq_tick_batch = SequentialProtocol.seq_tick_batch_loop


KS_PROTOCOLS = [
    ("two-choices", TwoChoicesSequential, 6 * 24**2),
    ("voter", VoterSequential, 6 * 24**2),
    ("three-majority", ThreeMajoritySequential, 6 * 24**2),
]
KS_TOPOLOGIES = [
    ("ring", lambda: ring(24)),
    ("torus", lambda: torus(5, 5)),
    ("random-regular", lambda: random_regular(24, 4, seed=11)),
]


class TestCrossEngineLaw:
    """Batched vs reference engines: same convergence-time law."""

    @pytest.mark.parametrize("proto_name,proto_cls,per_n_budget", KS_PROTOCOLS)
    @pytest.mark.parametrize("topo_name,topo_factory", KS_TOPOLOGIES)
    def test_sparse_sequential_matches_sequential(
        self, proto_name, proto_cls, per_n_budget, topo_name, topo_factory
    ):
        topology = topo_factory()
        n = topology.n
        config = ColorConfiguration([int(0.7 * n), n - int(0.7 * n)])
        max_ticks = per_n_budget * n
        trials = 40
        reference = SequentialEngine(proto_cls(), topology)
        batched = SparseSequentialEngine(proto_cls(), topology)
        ref_rounds, sparse_rounds = [], []
        for trial in range(trials):
            ref = reference.run(config, seed=1000 + trial, max_ticks=max_ticks)
            spr = batched.run(config, seed=9000 + trial, max_ticks=max_ticks)
            assert ref.converged and spr.converged, (proto_name, topo_name, trial)
            ref_rounds.append(ref.rounds)
            sparse_rounds.append(spr.rounds)
        stat, p_value = ks_permutation_test(ref_rounds, sparse_rounds, seed=5)
        assert p_value > 0.01, (proto_name, topo_name, stat, p_value)

    def test_sparse_matches_true_per_tick_loop(self):
        # One cell against the seed per-tick loop itself (not just the
        # vectorised SequentialEngine path): voter on a small ring.
        topology = ring(16)
        config = ColorConfiguration([11, 5])
        reference = SequentialEngine(_PerTickTwoChoices(), topology)
        batched = SparseSequentialEngine(TwoChoicesSequential(), topology)
        max_ticks = 16**3 * 40
        ref_rounds, sparse_rounds = [], []
        for trial in range(40):
            ref = reference.run(config, seed=300 + trial, max_ticks=max_ticks)
            spr = batched.run(config, seed=7300 + trial, max_ticks=max_ticks)
            assert ref.converged and spr.converged
            ref_rounds.append(ref.rounds)
            sparse_rounds.append(spr.rounds)
        stat, p_value = ks_permutation_test(ref_rounds, sparse_rounds, seed=5)
        assert p_value > 0.01, (stat, p_value)

    def test_sparse_continuous_matches_continuous(self):
        topology = torus(5, 5)
        n = topology.n
        config = ColorConfiguration([18, 7])
        reference = ContinuousEngine(TwoChoicesSequential(), topology)
        batched = SparseContinuousEngine(TwoChoicesSequential(), topology)
        ref_times, sparse_times = [], []
        for trial in range(40):
            ref = reference.run(config, seed=100 + trial, max_time=4000.0)
            spr = batched.run(config, seed=8100 + trial, max_time=4000.0)
            assert ref.converged and spr.converged
            ref_times.append(ref.parallel_time)
            sparse_times.append(spr.parallel_time)
        stat, p_value = ks_permutation_test(ref_times, sparse_times, seed=5)
        assert p_value > 0.01, (stat, p_value)

    def test_undecided_state_law_on_torus(self):
        topology = torus(5, 5)
        n = topology.n
        config = ColorConfiguration([17, 8])
        reference = SequentialEngine(UndecidedStateSequential(), topology)
        batched = SparseSequentialEngine(UndecidedStateSequential(), topology)
        max_ticks = 4000 * n
        ref_rounds, sparse_rounds = [], []
        for trial in range(40):
            ref = reference.run(config, seed=500 + trial, max_ticks=max_ticks)
            spr = batched.run(config, seed=6500 + trial, max_ticks=max_ticks)
            assert ref.converged and spr.converged
            ref_rounds.append(ref.rounds)
            sparse_rounds.append(spr.rounds)
        stat, p_value = ks_permutation_test(ref_rounds, sparse_rounds, seed=5)
        assert p_value > 0.01, (stat, p_value)


class TestEnginePlumbing:
    def test_rejects_protocol_without_footprint(self):
        with pytest.raises(ConfigurationError, match="footprint"):
            SparseSequentialEngine(AsyncPluralityProtocol(), ring(16))

    def test_rejects_bad_block_ticks(self):
        with pytest.raises(ConfigurationError, match="block_ticks"):
            SparseSequentialEngine(VoterSequential(), ring(16), block_ticks=0)

    def test_rejects_size_mismatch(self):
        engine = SparseSequentialEngine(VoterSequential(), ring(16))
        with pytest.raises(ConfigurationError, match="16"):
            engine.run(ColorConfiguration([5, 5]), seed=0)

    def test_tick_budget_and_parallel_time_grid(self):
        engine = SparseSequentialEngine(VoterSequential(), ring(32))
        result = engine.run(
            ColorConfiguration([16, 16]), max_ticks=1000, stop=lambda counts: False, seed=3
        )
        assert result.rounds == 1000
        assert result.parallel_time == 1000 / 32
        assert not result.converged

    def test_convergence_lands_on_check_grid(self):
        engine = SparseSequentialEngine(TwoChoicesSequential(), torus(5, 5))
        result = engine.run(ColorConfiguration([20, 5]), seed=2, max_ticks=25 * 20000)
        assert result.converged
        # Stop conditions fire on the check_every (= n) cadence, like
        # SequentialEngine, unless absorption ended the run earlier.
        assert result.rounds % 25 == 0

    def test_continuous_respects_max_time(self):
        engine = SparseContinuousEngine(VoterSequential(), ring(64))
        result = engine.run(
            ColorConfiguration([32, 32]), max_time=2.5, stop=lambda counts: False, seed=4
        )
        assert result.parallel_time <= 2.5
        assert not result.converged

    def test_trace_cadence(self):
        engine = SparseSequentialEngine(VoterSequential(), ring(50))
        result = engine.run(
            ColorConfiguration([25, 25]),
            max_ticks=50 * 10,
            stop=lambda counts: False,
            record_trace=True,
            trace_every_parallel=1.0,
            seed=5,
        )
        assert len(result.trace) >= 10

    def test_continuous_trace_cadence_with_large_check_every(self):
        engine = SparseContinuousEngine(TwoChoicesSequential(), torus(8, 8))
        result = engine.run(
            ColorConfiguration([40, 24]),
            seed=5,
            record_trace=True,
            trace_every=1.0,
            check_every=10**9,
            max_time=6.0,
        )
        assert len(result.trace) >= 5

    def test_metadata_names_engine(self):
        seq = SparseSequentialEngine(VoterSequential(), ring(16)).run(
            ColorConfiguration([10, 6]), seed=0, max_ticks=400
        )
        assert seq.metadata["engine"] == "sparse-sequential"
        cont = SparseContinuousEngine(VoterSequential(), ring(16)).run(
            ColorConfiguration([10, 6]), seed=0, max_time=30.0
        )
        assert cont.metadata["engine"] == "sparse-continuous"

    def test_fixed_block_ticks_is_honoured_exactly(self):
        # A fixed block size disables adaptation but not correctness.
        engine = SparseSequentialEngine(VoterSequential(), ring(32), block_ticks=7)
        result = engine.run(
            ColorConfiguration([16, 16]), max_ticks=200, stop=lambda counts: False, seed=6
        )
        assert result.rounds == 200


class TestSamplingBlocks:
    def test_block_matches_neighbor_sets(self):
        for topology in (ring(12), star(9), torus(4, 4), hypercube(4)):
            rng = np.random.default_rng(3)
            nodes = rng.integers(0, topology.n, size=500)
            block = topology.sample_neighbors_block(nodes, 3, rng)
            assert block.shape == (500, 3)
            for i in range(0, 500, 97):
                neighbors = set(int(v) for v in topology.neighbors_of(int(nodes[i])))
                assert set(int(v) for v in block[i]) <= neighbors

    def test_uniform_degree_detection(self):
        assert ring(10)._uniform_degree == 2
        assert torus(4, 5)._uniform_degree == 4
        assert star(5)._uniform_degree is None

    def test_block_uniformity_on_regular_and_irregular(self):
        # Chi-square-ish sanity: each neighbour appears ~uniformly.
        for topology in (ring(6), star(6)):
            rng = np.random.default_rng(9)
            nodes = np.full(20000, 0, dtype=np.int64)
            block = topology.sample_neighbors_block(nodes, 1, rng)
            _, counts = np.unique(block, return_counts=True)
            expected = 20000 / topology.degree(0)
            assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected))

    def test_complete_graph_block_excludes_self(self):
        graph = CompleteGraph(7)
        rng = np.random.default_rng(1)
        nodes = rng.integers(0, 7, size=1000)
        block = graph.sample_neighbors_block(nodes, 2, rng)
        assert (block != nodes[:, None]).all()
        assert block.min() >= 0 and block.max() < 7


class TestFromCSR:
    def test_round_trip_matches_list_construction(self):
        reference = torus(4, 6)
        rebuilt = AdjacencyTopology.from_csr(reference._offsets, reference._flat)
        assert rebuilt.n == reference.n
        for node in range(reference.n):
            assert np.array_equal(rebuilt.neighbors_of(node), reference.neighbors_of(node))
        assert rebuilt._uniform_degree == reference._uniform_degree

    def test_rejects_isolated_node(self):
        with pytest.raises(TopologyError, match="isolated"):
            AdjacencyTopology.from_csr(np.array([0, 1, 1, 2]), np.array([1, 0]))

    def test_rejects_bad_offsets(self):
        with pytest.raises(TopologyError, match="offsets"):
            AdjacencyTopology.from_csr(np.array([1, 2, 3]), np.array([0, 1, 0]))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(TopologyError, match="outside|neighbour"):
            AdjacencyTopology.from_csr(np.array([0, 1, 2]), np.array([5, 0]))

    def test_rejects_single_node(self):
        with pytest.raises(TopologyError, match="2 nodes"):
            AdjacencyTopology.from_csr(np.array([0, 1]), np.array([0]))


class TestNetworkxAdapter:
    def test_from_networkx_builds_csr(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.nx_adapter import from_networkx

        graph = nx.cycle_graph(9)
        topology = from_networkx(graph)
        reference = ring(9)
        assert topology.n == 9
        for node in range(9):
            assert set(topology.neighbors_of(node).tolist()) == set(
                reference.neighbors_of(node).tolist()
            )
        # CSR construction implies the vectorised block sampler.
        rng = np.random.default_rng(0)
        block = topology.sample_neighbors_block(np.arange(9), 2, rng)
        assert block.shape == (9, 2)

    def test_from_networkx_rejects_isolated(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.nx_adapter import from_networkx

        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)
        with pytest.raises(TopologyError, match="isolated"):
            from_networkx(graph)

    def test_from_networkx_rejects_directed(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.nx_adapter import from_networkx

        with pytest.raises(TopologyError, match="undirected"):
            from_networkx(nx.DiGraph([(0, 1)]))


class TestDispatchIntegration:
    def test_simulate_routes_sparse_and_runs(self):
        from repro.api import SimulationSpec, simulate

        spec = SimulationSpec(
            protocol="two-choices",
            n=64,
            topology="torus",
            model="sequential",
            initial="two-colors",
            initial_params={"gap": 24},
            reps=3,
            seed=11,
            max_steps=64 * 4000,
        )
        sim = simulate(spec)
        # n=64 sits below the dispatch size crossover, so the spec
        # resolves to the zip-apply hooks engine (the sparse engine
        # engages from SPARSE_SEQUENTIAL_CROSSOVER nodes — routing
        # table: tests/test_dispatch_routing.py).
        assert sim.engine == "SequentialEngine"
        assert sim.reps == 3
        assert all(run.converged for run in sim.runs)

    def test_fastest_engine_zero_delay_continuous(self):
        from repro.engine.delays import FixedDelay

        engine = fastest_engine(
            VoterSequential(), ring(32), model="continuous", delay_model=FixedDelay(0.0)
        )
        assert isinstance(engine, SparseContinuousEngine)

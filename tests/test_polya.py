"""Tests for the Pólya urn module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.polya import PolyaUrn, limit_beta_parameters, limit_fraction_variance
from repro.core.exceptions import ConfigurationError


class TestConstruction:
    def test_basic(self):
        urn = PolyaUrn([3, 2])
        assert urn.k == 2
        assert urn.total == 5
        assert urn.fractions().tolist() == [0.6, 0.4]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolyaUrn([])
        with pytest.raises(ConfigurationError):
            PolyaUrn([0, 0])
        with pytest.raises(ConfigurationError):
            PolyaUrn([-1, 2])
        with pytest.raises(ConfigurationError):
            PolyaUrn([1, 1], reinforcement=0)


class TestDynamics:
    def test_step_adds_reinforcement(self, rng):
        urn = PolyaUrn([5, 5], reinforcement=3)
        color = urn.step(rng)
        assert urn.total == 13
        assert urn.counts[color] >= 8
        assert urn.draws == 1

    def test_run_total_growth(self):
        urn = PolyaUrn([2, 2])
        urn.run(100, seed=1)
        assert urn.total == 104
        assert urn.draws == 100

    def test_run_records_history(self):
        urn = PolyaUrn([2, 2])
        history = urn.run(10, seed=2, record_every=5)
        assert history.shape == (3, 2)  # initial + 2 snapshots
        assert np.allclose(history.sum(axis=1), 1.0)

    def test_run_without_recording_returns_none(self):
        assert PolyaUrn([1, 1]).run(5, seed=3) is None

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            PolyaUrn([1, 1]).run(-1)

    def test_reset(self):
        urn = PolyaUrn([4, 6])
        urn.run(50, seed=4)
        urn.reset()
        assert urn.total == 10
        assert urn.draws == 0
        assert urn.counts.tolist() == [4, 6]

    def test_deterministic_given_seed(self):
        a = PolyaUrn([3, 7])
        b = PolyaUrn([3, 7])
        a.run(200, seed=9)
        b.run(200, seed=9)
        assert a.counts.tolist() == b.counts.tolist()

    def test_monochromatic_urn_stays_monochromatic(self):
        urn = PolyaUrn([10, 0])
        urn.run(50, seed=5)
        assert urn.counts[1] == 0


class TestMartingaleProperty:
    def test_fraction_mean_is_preserved(self):
        """E[fraction after m draws] equals the initial fraction — the
        core property Bit-Propagation relies on."""
        initial = [30, 70]
        draws = 200
        trials = 400
        finals = []
        for seed in range(trials):
            urn = PolyaUrn(initial)
            urn.run(draws, seed=seed)
            finals.append(urn.fractions()[0])
        sem = np.std(finals, ddof=1) / np.sqrt(trials)
        assert abs(np.mean(finals) - 0.3) < 4 * sem + 1e-9

    def test_variance_below_beta_limit(self):
        initial = [50, 150]
        trials = 300
        finals = []
        for seed in range(trials):
            urn = PolyaUrn(initial)
            urn.run(400, seed=seed)
            finals.append(urn.fractions()[0])
        limit = np.sqrt(limit_fraction_variance(initial, 0))
        assert np.std(finals, ddof=1) <= 1.5 * limit


class TestLimitFormulas:
    def test_beta_parameters(self):
        a, b = limit_beta_parameters([4, 6], 0)
        assert (a, b) == (4.0, 6.0)

    def test_beta_parameters_with_reinforcement(self):
        a, b = limit_beta_parameters([4, 6], 1, reinforcement=2)
        assert (a, b) == (3.0, 2.0)

    def test_beta_parameters_out_of_range(self):
        with pytest.raises(ConfigurationError):
            limit_beta_parameters([4, 6], 2)

    def test_limit_variance_formula(self):
        # Beta(a, b) variance = ab / ((a+b)^2 (a+b+1)); here p=a/(a+b).
        value = limit_fraction_variance([3, 7], 0)
        a, b = 3.0, 7.0
        expected = (a * b) / ((a + b) ** 2 * (a + b + 1))
        assert value == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=40), min_size=2, max_size=6),
    steps=st.integers(min_value=0, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_total_growth_and_conservation(counts, steps, seed):
    urn = PolyaUrn(counts)
    start_total = urn.total
    urn.run(steps, seed=seed)
    assert urn.total == start_total + steps
    assert (urn.counts >= np.array(counts) - 0).all()  # counts never shrink

"""Topology tour: how Two-Choices degrades away from the clique.

Every theorem in the paper is for the complete graph; this script takes
the same Two-Choices dynamics on a tour through sparse topologies —
hypercube, random regular, small-world, preferential attachment, torus
and ring — and measures rounds-to-consensus from the same biased start.
Expander-like graphs (hypercube, random regular, small world) stay
within a small factor of the clique; the ring's poor expansion makes
consensus dramatically slower.

Run::

    python examples/topology_tour.py [n]
"""

import sys

import numpy as np

from repro.bench import format_table
from repro.core.colors import ColorConfiguration
from repro.engine import SynchronousEngine, fastest_engine
from repro.graphs import (
    CompleteGraph,
    barabasi_albert,
    hypercube,
    random_regular,
    ring,
    torus,
    watts_strogatz,
)
from repro.protocols import TwoChoicesSequential, TwoChoicesSynchronous
from repro.viz import hbar_chart


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_024
    dimension = int(np.log2(n))
    n = 1 << dimension  # hypercube wants a power of two
    side = int(np.sqrt(n))

    topologies = [
        ("complete", CompleteGraph(n)),
        ("hypercube", hypercube(dimension)),
        ("random 6-regular", random_regular(n, 6, seed=1)),
        ("small world", watts_strogatz(n, 3, 0.2, seed=2)),
        ("pref. attachment", barabasi_albert(n, 3, seed=3)),
        ("torus", torus(side, side)),
        ("ring", ring(n)),
    ]
    config = ColorConfiguration([int(0.7 * n), n - int(0.7 * n)])
    print(f"Two-Choices from a 70/30 split, n={n} (5 trials each)")
    print()

    rows = []
    labels, values = [], []
    for name, topology in topologies:
        actual_n = topology.n
        scaled = ColorConfiguration([int(0.7 * actual_n), actual_n - int(0.7 * actual_n)])
        engine = SynchronousEngine(TwoChoicesSynchronous(), topology)
        rounds, wins = [], 0
        for seed in range(5):
            result = engine.run(scaled, seed=seed, max_rounds=20_000)
            if result.converged:
                rounds.append(result.rounds)
                wins += int(result.winner == 0)
        mean_rounds = float(np.mean(rounds)) if rounds else float("nan")
        rows.append([name, actual_n, mean_rounds, f"{wins}/5", f"{len(rounds)}/5 converged"])
        if rounds:
            labels.append(name)
            values.append(mean_rounds)
    print(format_table(["topology", "n", "mean rounds", "plurality wins", "status"], rows))
    print()
    print(hbar_chart(labels, values))
    print()
    print("expanders track the clique; the ring pays its Theta(n) mixing time.")

    # --- the asynchronous model on the torus ---------------------------------
    # fastest_engine routes off-K_n tick runs to the hazard-batched
    # SparseSequentialEngine automatically (DESIGN.md section 2.6).
    torus_grid = torus(side, side)
    actual_n = torus_grid.n
    engine = fastest_engine(TwoChoicesSequential(), torus_grid, model="sequential")
    scaled = ColorConfiguration([int(0.7 * actual_n), actual_n - int(0.7 * actual_n)])
    result = engine.run(scaled, seed=1, max_ticks=5_000 * actual_n)
    status = "consensus" if result.converged else "no consensus (budget hit)"
    print()
    print(
        f"asynchronous Two-Choices on the torus via {type(engine).__name__}: "
        f"{status} after parallel time {result.parallel_time:.0f} "
        f"({result.rounds} ticks)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Sensor swarm: asynchronous majority sensing with unreliable clocks.

The motivating scenario for asynchronous plurality consensus: a swarm
of cheap sensors each takes a noisy reading of an environmental state
(one of ``k`` discrete levels).  Most sensors read the true level, but
measurement noise spreads the rest over the other levels.  The sensors
have no shared clock — each wakes up on its own Poisson timer — and
must agree on the *plurality* reading using O(1) memory per node (one
opinion plus the protocol's single extra bit).

The script compares the paper's phased protocol against the naive
asynchronous Voter dynamics on the same readings, demonstrating the two
properties the paper proves: the plurality wins (Voter is a lottery)
and convergence is fast.

Run::

    python examples/sensor_swarm.py [n_sensors] [k_levels]
"""

import sys

import numpy as np

from repro import (
    AsyncPluralityConsensus,
    CompleteGraph,
    SequentialEngine,
    counts_from_assignment,
)
from repro.core.rng import as_generator
from repro.protocols import VoterSequential


def noisy_readings(n: int, k: int, true_level: int, accuracy: float, rng) -> np.ndarray:
    """Each sensor reads the true level with probability *accuracy*,
    otherwise a uniform wrong level."""
    readings = np.full(n, true_level, dtype=np.int64)
    noisy = rng.random(n) >= accuracy
    wrong = rng.integers(0, k - 1, size=int(noisy.sum()))
    wrong = np.where(wrong >= true_level, wrong + 1, wrong)
    readings[noisy] = wrong
    return readings


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    true_level = 2
    accuracy = 0.3  # well above the uniform 1/k but far from certain
    rng = as_generator(99)

    readings = noisy_readings(n, k, true_level, accuracy, rng)
    config = counts_from_assignment(readings, k=k)
    print(f"{n} sensors, {k} levels, true level = {true_level}")
    print(f"initial readings: {list(config.counts)}")
    print(f"plurality reading: level {config.plurality} "
          f"({'correct' if config.plurality == true_level else 'WRONG'}), "
          f"bias c1/c2 = {config.multiplicative_bias:.2f}")
    print()

    # --- the paper's protocol ------------------------------------------------
    result = AsyncPluralityConsensus().run(readings.copy(), seed=7)
    verdict = "correct" if result.winner == true_level else f"level {result.winner}"
    print(f"phased protocol : consensus on {verdict} "
          f"in parallel time {result.parallel_time:.0f}")

    # --- naive voter on the same readings ------------------------------------
    voter = SequentialEngine(VoterSequential(), CompleteGraph(n))
    wins = 0
    trials = 5
    for seed in range(trials):
        voter_result = voter.run(readings.copy(), seed=seed, max_ticks=400 * n)
        if voter_result.converged and voter_result.winner == true_level:
            wins += 1
    print(f"voter dynamics  : correct in {wins}/{trials} runs "
          f"(a ~{config.c1 / n:.0%} lottery, and Theta(n) time when it does finish)")
    return 0 if result.winner == true_level else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Protocol face-off: who wins where on the (k, bias) landscape.

Reproduces in miniature the comparison the paper's introduction argues
from: plain Two-Choices is excellent at ``k = 2`` but pays an
``Omega(n/c1)`` wall with many balanced opinions, while one extra bit
of memory (OneExtraBit, Theorem 1.2) keeps the run time
polylogarithmic.  The Voter, 3-Majority and Undecided-State baselines
calibrate the landscape.

All rows are generated with the exact counts-level engines, so ``n``
can be a million nodes on a laptop.

Run::

    python examples/protocol_faceoff.py [n]
"""

import math
import sys

from repro import ColorConfiguration, CountsEngine
from repro.bench import format_table
from repro.protocols import (
    OneExtraBitCounts,
    ThreeMajorityCounts,
    TwoChoicesCounts,
    UndecidedStateCounts,
)
from repro.workloads import theorem_1_1_gap


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    protocols = [
        ("two-choices", TwoChoicesCounts()),
        ("3-majority", ThreeMajorityCounts()),
        ("undecided-state", UndecidedStateCounts()),
        ("one-extra-bit", OneExtraBitCounts()),
    ]
    rows = []
    for k in (2, 8, 32, 128):
        config = theorem_1_1_gap(n, k, z=1.0)
        row = [k, round(n / config.c1, 1)]
        best_name, best_rounds = None, math.inf
        for name, protocol in protocols:
            result = CountsEngine(protocol).run(config, seed=2017 + k, max_rounds=50_000)
            rounds = result.rounds if result.converged else None
            preserved = "yes" if result.plurality_preserved else "NO"
            row.append(f"{rounds} ({preserved})" if rounds is not None else "timeout")
            if rounds is not None and rounds < best_rounds:
                best_name, best_rounds = name, rounds
        row.append(best_name)
        rows.append(row)

    headers = ["k", "n/c1"] + [name for name, _ in protocols] + ["fastest"]
    print(f"rounds to consensus on K_n, n={n}, gap = sqrt(n log n), c2=...=ck")
    print("(cell format: rounds (plurality preserved?))")
    print()
    print(format_table(headers, rows))
    print()
    print("expected shape: two-choices degrades with k; one-extra-bit stays flat")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Anatomy of a broadcast: the engine inside Bit-Propagation.

The paper's speed-up "combines the two-choices process with a rumor
spreading algorithm" — Bit-Propagation is pull-based rumour spreading
of the extra bit.  This script dissects the substrate: it runs push,
pull and push–pull broadcast on ``K_n`` (exact counts-level simulation,
so ``n`` can be huge), prints the informed-count growth curves as
sparklines, and compares the measured round counts against the classic
predictions (push ``~ log2 n + ln n``, push–pull ``~ log3 n``).

Run::

    python examples/broadcast_anatomy.py [n]
"""

import math
import sys

from repro.bench import format_table
from repro.protocols import spread_rumor_counts
from repro.viz import sparkline


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000

    print(f"broadcast on K_n, n={n:,}, from a single informed node")
    print()
    rows = []
    curves = {}
    for mode in ("push", "pull", "push-pull"):
        result = spread_rumor_counts(n, mode=mode, seed=42)
        informed = result.trace.count_matrix()[:, 0]
        curves[mode] = informed
        if mode == "push":
            predicted = math.log2(n) + math.log(n)
        elif mode == "pull":
            predicted = math.log2(n) + math.log(n)
        else:
            predicted = math.log(n) / math.log(3) + 2 * math.log(math.log(n))
        rows.append([mode, result.rounds, round(predicted, 1), round(result.rounds / math.log2(n), 2)])
    print(format_table(["mode", "rounds", "classic prediction", "rounds / log2 n"], rows))

    print()
    print("informed-count growth (one block per round, height = fraction informed):")
    for mode, informed in curves.items():
        print(f"  {mode:9s}  {sparkline(informed, peak=n)}")
    print()
    print("push-pull's tail is shorter: pull finishes off the last stragglers")
    print("exponentially fast once most nodes are informed — exactly the")
    print("property Bit-Propagation leans on to cover all n nodes.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

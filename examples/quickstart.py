"""Quickstart: run the paper's asynchronous plurality-consensus protocol.

A population of ``n`` nodes holds ``k`` opinions with a ``(1 + eps)``
multiplicative bias towards opinion 0 (Theorem 1.3's precondition).
Each node has a rate-1 Poisson clock; we simulate the sequential model,
run the full phased protocol (Two-Choices + Bit-Propagation + Sync
Gadget phases, then the Two-Choices endgame) and report what happened.

Run::

    python examples/quickstart.py [n] [k]
"""

import sys

from repro import AsyncPluralityConsensus, multiplicative_bias
from repro.analysis import synchrony_summary, theory


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    ratio = 1.5  # c1 = 1.5 * c2 -> eps = 0.5

    config = multiplicative_bias(n, k, ratio)
    print(f"population: n={n}, k={k}, counts={list(config.counts)}")
    print(f"bias: c1/c2 = {config.multiplicative_bias:.2f} "
          f"(Theorem 1.3 needs c1 >= (1+eps) ci)")

    protocol = AsyncPluralityConsensus()
    schedule = protocol.schedule_for(n)
    print(f"schedule: {schedule.describe()}")

    result = protocol.run(config, seed=2017)

    print()
    if result.converged:
        print(f"consensus on colour {result.winner} "
              f"({'the initial plurality' if result.plurality_preserved else 'an upset!'})")
    else:
        print("no consensus within the budget (unexpected at this bias)")
    print(f"parallel time: {result.parallel_time:.1f} "
          f"(Theta(log n) predicts ~C * {theory.async_parallel_time(n):.1f})")
    synchrony = synchrony_summary(result, until_parallel_time=result.metadata["part_one_length"])
    print(f"working-time spread during part one: max {synchrony['max_spread']}, "
          f"core(99%) {synchrony['max_core_spread']} "
          f"(Delta = {result.metadata['delta']})")
    return 0 if result.converged else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""The Sync Gadget at work: weak perpetual synchronisation, visualised.

The paper's key technical novelty is a gadget that keeps almost all
nodes' *working times* within ``Delta = Theta(log n / log log n)`` of
one another even though their Poisson clocks drift apart.  This script
runs the phased protocol twice — gadget on and off — and plots the
working-time spread over time as ASCII sparkbars, making the contrast
visible in a terminal: without the gadget the spread grows like
``sqrt(t)``; with it, every phase's jump step pulls the population back
together.

Run::

    python examples/async_synchronizer.py [n]
"""

import sys

from repro import AsyncPluralityConsensus, multiplicative_bias

BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, peak) -> str:
    """Map values onto eight-level block characters."""
    out = []
    for value in values:
        level = 0 if peak == 0 else min(8, int(round(8 * value / peak)))
        out.append(BLOCKS[level])
    return "".join(out)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    config = multiplicative_bias(n, 8, 1.5)
    traces = {}
    part_one = None
    for sync in (True, False):
        protocol = AsyncPluralityConsensus(sync_enabled=sync)
        result = protocol.run(
            config,
            seed=4,
            stop_at_consensus=False,
            record_spread=True,
            spread_every_parallel=10.0,
        )
        part_one = result.metadata["part_one_length"]
        entries = [e for e in result.metadata["spread_trace"] if e["time"] <= part_one]
        traces[sync] = entries

    peak = max(e["spread_core"] for entries in traces.values() for e in entries)
    print(f"core (99%) working-time spread during part one, n={n}, "
          f"Delta={AsyncPluralityConsensus().schedule_for(n).delta}, "
          f"one bar per 10 units of parallel time (peak={peak}):")
    print()
    for sync in (True, False):
        label = "gadget ON " if sync else "gadget OFF"
        values = [e["spread_core"] for e in traces[sync]]
        print(f"  {label}  {sparkline(values, peak)}  (final: {values[-1]})")
    print()
    grew = traces[False][-1]["spread_core"] / max(traces[False][0]["spread_core"], 1)
    capped = traces[True][-1]["spread_core"] / max(traces[True][0]["spread_core"], 1)
    print(f"spread growth over part one: x{grew:.1f} without the gadget, "
          f"x{capped:.1f} with it")
    return 0 if capped < grew else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""T5 - Section 2: per-phase quadratic amplification of c1/c2.

Regenerates experiment T5 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_quadratic_growth(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T5", bench_scale, bench_store)

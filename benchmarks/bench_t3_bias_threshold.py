"""T3 - Theorem 1.1 threshold: sqrt(n) gaps lose with constant probability, sqrt(n log n) gaps win w.h.p.

Regenerates experiment T3 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_bias_threshold(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T3", bench_scale, bench_store)

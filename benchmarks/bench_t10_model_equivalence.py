"""T10 - Section 1: sequential and continuous-time models have the same run time.

Regenerates experiment T10 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_model_equivalence(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T10", bench_scale, bench_store)

"""T11 - Introduction: the protocol landscape (voter / 3-majority / USD / Two-Choices / OneExtraBit).

Regenerates experiment T11 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_protocol_comparison(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T11", bench_scale, bench_store)

"""T8 - Section 3.1: Bit-Propagation preserves the colour mix (Polya-urn martingale).

Regenerates experiment T8 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_bit_propagation_polya(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T8", bench_scale, bench_store)

"""T7 - Section 3.1: the Sync Gadget keeps working-time spread bounded.

Regenerates experiment T7 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_sync_gadget(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T7", bench_scale, bench_store)

"""S1 - Substrate: rumour spreading (push / pull / push-pull) on K_n.

Validates the broadcast primitive that Bit-Propagation instantiates
("we combine the two-choices process with a rumor spreading algorithm").
"""

from .conftest import run_and_check


def test_rumor_spreading(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "S1", bench_scale, bench_store)

"""A3 - Ablation: block length Delta (the log n / log log n choice).

Regenerates ablation A3 from DESIGN.md section 4's design choices.
"""

from .conftest import run_and_check


def test_delta_factor(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "A3", bench_scale, bench_store)

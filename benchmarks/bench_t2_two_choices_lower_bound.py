"""T2 - Theorem 1.1 lower bound: balanced runners-up force Omega(n/c1 + log n) rounds.

Regenerates experiment T2 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_two_choices_lower_bound(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T2", bench_scale, bench_store)

"""Engine-family perf benchmark (no experiment id — pure wall clock).

Times every engine on a fixed asynchronous Two-Choices workload
(counts (0.6n, 0.4n) on ``K_n``, run to consensus) and persists the
payload to ``BENCH_engines.json`` at the repo root so the perf
trajectory is comparable across PRs.

Usage::

    pytest benchmarks/bench_perf_engines.py --benchmark-only       # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_perf_engines.py --benchmark-only
    python benchmarks/bench_perf_engines.py [--quick] [--headline] [--out PATH]

The ``full`` pytest scale (and the script without ``--quick``) covers
``n in {1e4, 1e5, 1e6}`` with the per-tick baseline capped at ``1e5``;
``--headline`` adds the ``n = 1e8`` counts-engine run the acceptance
criteria quote.
"""

import os
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_engines.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.perf_engines import (  # noqa: E402
    DEFAULT_NS,
    QUICK_NS,
    benchmark_engines,
    format_payload,
    save_payload,
)


def test_engine_family_perf(benchmark):
    """Pytest-benchmark target: one sweep at the selected scale."""
    full = os.environ.get("REPRO_BENCH_SCALE") == "full"
    payload = benchmark.pedantic(
        benchmark_engines,
        kwargs={
            "ns": list(DEFAULT_NS if full else QUICK_NS),
            "trials": 3 if full else 2,
            "baseline_max_n": None if full else 10_000,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_payload(payload))
    save_payload(payload, str(OUT_PATH))
    skipped = {r["engine"] for r in payload["results"] if r.get("skipped")}
    timed = [r for r in payload["results"] if not r.get("skipped")]
    assert timed, "no engine was timed"
    assert all(r["all_converged"] for r in timed)
    # The counts fast path always beats the seed per-tick baseline; it
    # beats the batched agent engines from n >= 1e5 (below that, fixed
    # per-batch numpy overhead dominates and everything is < 0.1 s).
    for n in payload["ns"]:
        rows = {r["engine"]: r for r in payload["results"] if r["n"] == n and not r.get("skipped")}
        if "counts-sequential" not in rows:
            continue
        counts_seconds = rows["counts-sequential"]["mean_seconds"]
        if "sequential/per-tick" in rows:
            assert counts_seconds < rows["sequential/per-tick"]["mean_seconds"]
        if n >= 100_000 and "sequential" in rows:
            assert counts_seconds < rows["sequential"]["mean_seconds"]
    # The ensemble path beats the looped run_trials path wherever the
    # per-run cost is dominated by batch-loop overhead (n >= 1e5; at
    # 1e4 a run is a handful of batches and both paths are < 0.1 s).
    assert payload["ensemble"], "no ensemble comparison was timed"
    assert all(entry["all_converged"] for entry in payload["ensemble"])
    for entry in payload["ensemble"]:
        if entry["n"] >= 100_000 and entry["reps"] >= 100:
            assert entry["speedup"] > 1.0, entry
    if skipped:
        print(f"skipped above their size caps: {sorted(skipped)}")


if __name__ == "__main__":
    from repro.bench import perf_engines

    argv = sys.argv[1:]
    if "--out" not in argv:
        argv += ["--out", str(OUT_PATH)]
    raise SystemExit(perf_engines.main(argv))

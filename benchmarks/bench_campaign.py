"""Campaign-layer perf benchmark (no experiment id — pure wall clock).

Times one CPU-bound campaign grid (asynchronous Two-Choices on ``K_n``
through the ensemble counts fast path, ``n`` log-spaced up to ``1e8``)
three ways and persists the payload to ``BENCH_campaign.json`` at the
repo root:

* ``serial``  — ``run_campaign(executor="serial")``, cold, populating a
  fresh cache directory;
* ``process`` — ``run_campaign(executor="process", workers=4)``, cold,
  no cache (the chunked ``ProcessPoolExecutor`` dispatch);
* ``warm``    — the serial campaign replayed against the populated
  cache (zero engine runs).

Acceptance criteria (ISSUE 4): with 4 process workers the grid runs
>= 2x faster than serial wall-clock — asserted wherever the machine
actually has >= 4 CPUs (``process_speedup_applicable``; single-core
boxes record the measurement without asserting it) — and the
warm-cache replay costs < 5% of the cold serial run.  The executor
identity (serial == process == warm, value for value) is asserted
unconditionally.

Usage::

    pytest benchmarks/bench_campaign.py --benchmark-only              # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_campaign.py --benchmark-only
    python benchmarks/bench_campaign.py [--quick] [--workers N] [--out PATH]
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_campaign.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.api import CampaignSpec, SimulationSpec, SweepSpec, run_campaign  # noqa: E402
from repro.bench.store import warn_skipped_criterion  # noqa: E402
from repro.workloads.sweeps import log_spaced_ints  # noqa: E402

WORKERS = 4
SPEEDUP_TARGET = 2.0
WARM_FRACTION_TARGET = 0.05

QUICK_GRID = {"low": 10_000_000, "high": 100_000_000, "points": 8, "reps": 4}
FULL_GRID = {"low": 10_000_000, "high": 100_000_000, "points": 12, "reps": 8}


def _campaign(grid) -> CampaignSpec:
    ns = log_spaced_ints(grid["low"], grid["high"], grid["points"])
    base = SimulationSpec(protocol="two-choices", n=ns[0], reps=grid["reps"])
    return CampaignSpec(
        base=base, sweep=SweepSpec(axes={"n": ns}), seed=20170725, name="bench-campaign"
    )


def _deterministic(result):
    payload = result.to_dict()
    del payload["execution"]
    return payload


def benchmark_campaign(quick: bool = False, workers: int = WORKERS) -> dict:
    """Run the three-way comparison and return the JSON payload."""
    grid = QUICK_GRID if quick else FULL_GRID
    campaign = _campaign(grid)
    cpu_count = os.cpu_count() or 1

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as cache_dir:
        start = time.perf_counter()
        serial = run_campaign(campaign, executor="serial", cache=cache_dir)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_campaign(campaign, executor="serial", cache=cache_dir)
        warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    process = run_campaign(campaign, executor="process", workers=workers)
    process_seconds = time.perf_counter() - start

    identical = _deterministic(serial) == _deterministic(process) == _deterministic(warm)
    speedup = serial_seconds / process_seconds if process_seconds > 0 else float("inf")
    warm_fraction = warm_seconds / serial_seconds if serial_seconds > 0 else 0.0
    return {
        "benchmark": "campaign layer: serial vs process executor vs warm cache",
        "workload": {
            "protocol": "two-choices",
            "model": "sequential",
            "initial": "benchmark-split",
            "ns": [int(n) for n in campaign.sweep.axes["n"]],
            "reps_per_point": grid["reps"],
            "points": campaign.size,
            "campaign_seed": campaign.seed,
        },
        "timings": {
            "serial_cold_seconds": serial_seconds,
            "process_cold_seconds": process_seconds,
            "warm_replay_seconds": warm_seconds,
        },
        "criteria": {
            "executor_identity_ok": identical,
            "process_workers": workers,
            "process_speedup_vs_serial": speedup,
            "process_speedup_target": SPEEDUP_TARGET,
            "process_speedup_applicable": cpu_count >= workers,
            "process_speedup_ok": speedup >= SPEEDUP_TARGET,
            "warm_engine_runs": warm.engine_runs,
            "warm_cache_hits": warm.cache_hits,
            "warm_fraction_of_cold": warm_fraction,
            "warm_fraction_target": WARM_FRACTION_TARGET,
            "warm_replay_ok": warm.engine_runs == 0 and warm_fraction < WARM_FRACTION_TARGET,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
        },
    }


def assert_criteria(payload: dict) -> None:
    """The acceptance gates; speedup asserts only where it can hold."""
    criteria = payload["criteria"]
    assert criteria["executor_identity_ok"], "serial/process/warm results diverged"
    assert criteria["warm_replay_ok"], criteria
    if criteria["process_speedup_applicable"]:
        assert criteria["process_speedup_ok"], criteria
    else:
        warn_skipped_criterion(
            "process_speedup_vs_serial",
            f"cpu_count={payload['environment']['cpu_count']} < "
            f"{criteria['process_workers']} process workers on this machine "
            f"(measured {criteria['process_speedup_vs_serial']:.2f}x, "
            f"target {criteria['process_speedup_target']}x)",
        )


def format_payload(payload: dict) -> str:
    t = payload["timings"]
    c = payload["criteria"]
    lines = [
        f"campaign grid: {payload['workload']['points']} points x "
        f"{payload['workload']['reps_per_point']} reps, "
        f"n up to {max(payload['workload']['ns']):.0e}",
        f"serial cold     : {t['serial_cold_seconds']:.2f}s",
        f"process ({c['process_workers']} wrk) : {t['process_cold_seconds']:.2f}s  "
        f"({c['process_speedup_vs_serial']:.2f}x vs serial; target {c['process_speedup_target']}x, "
        f"{'asserted' if c['process_speedup_applicable'] else 'recorded only: cpu_count=' + str(payload['environment']['cpu_count'])})",
        f"warm replay     : {t['warm_replay_seconds']:.3f}s  "
        f"({100 * c['warm_fraction_of_cold']:.1f}% of cold; target < "
        f"{100 * c['warm_fraction_target']:.0f}%, engine runs={c['warm_engine_runs']})",
        f"executor identity: {'ok' if c['executor_identity_ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def save_payload(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_campaign_layer_perf(benchmark):
    """Pytest-benchmark target: one three-way comparison at the selected scale."""
    quick = os.environ.get("REPRO_BENCH_SCALE") != "full"
    payload = benchmark.pedantic(
        benchmark_campaign, kwargs={"quick": quick}, iterations=1, rounds=1
    )
    print()
    print(format_payload(payload))
    save_payload(payload, str(OUT_PATH))
    assert_criteria(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller grid, fewer reps")
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--out", default=str(OUT_PATH), help="payload destination")
    args = parser.parse_args(argv)
    payload = benchmark_campaign(quick=args.quick, workers=args.workers)
    print(format_payload(payload))
    save_payload(payload, args.out)
    assert_criteria(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

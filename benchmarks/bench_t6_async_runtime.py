"""T6 - Theorem 1.3: the asynchronous protocol converges in Theta(log n) parallel time.

Regenerates experiment T6 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_async_runtime(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T6", bench_scale, bench_store)

"""T9 - Section 3.2: consensus precedes the first termination in the endgame.

Regenerates experiment T9 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_endgame(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T9", bench_scale, bench_store)

"""``repro serve`` load benchmark (no experiment id — pure wall clock).

Drives an in-process :class:`~repro.api.serve.ReproServer` over real
HTTP (keep-alive loopback connections, one per client thread) and
persists the payload to ``BENCH_serve.json`` at the repo root:

* ``warm``     — 100% hit rate: every request's key is already in the
  result cache, so the server answers synchronously from the
  in-process memo.  Requests/sec and p50/p99 latency.
* ``mixed``    — 50% hit rate: half the keys are pre-cached, half cold
  (each cold key queues one engine run).
* ``cold``     — 0% hit rate: every key is new.
* ``coalesce`` — N identical concurrent cold requests; the single-
  flight table must collapse them onto exactly one engine run.

Acceptance criteria (ISSUE 8): warm-hit p50 below
:data:`WARM_P50_TARGET_MS` and at least :data:`THROUGHPUT_TARGET` req/s
at 100% hit rate — asserted wherever the machine has at least
:data:`MIN_CPUS_FOR_ASSERT` CPUs (smaller boxes record the measurement
and emit a loud ``::warning``) — plus, unconditionally: the coalesce
leg performs exactly one engine run, and the served warm payload is
value-identical to a local ``simulate()``.

Usage::

    pytest benchmarks/bench_serve.py --benchmark-only                # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_serve.py --benchmark-only
    python benchmarks/bench_serve.py [--quick] [--clients N] [--out PATH]
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_serve.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.api import SimulationSpec, simulate  # noqa: E402
from repro.bench.store import (  # noqa: E402
    bench_environment,
    save_bench_payload,
    warn_skipped_criterion,
)
from repro.api.serve import ReproServer, ServeClient  # noqa: E402

WARM_P50_TARGET_MS = 5.0
THROUGHPUT_TARGET = 200.0  # warm req/s across all client threads
MIN_CPUS_FOR_ASSERT = 2
COALESCE_CLIENTS = 8

QUICK_LOAD = {"clients": 4, "warm_keys": 8, "warm_requests": 600, "cold_keys": 12}
FULL_LOAD = {"clients": 8, "warm_keys": 32, "warm_requests": 4000, "cold_keys": 48}

#: The per-request simulation: small enough that a cold run takes
#: milliseconds (the benchmark measures the serving layer, not the
#: engine), large enough to be a real consensus run.
BASE_SPEC = {
    "protocol": "two-choices",
    "n": 120,
    "initial": "two-colors",
    "initial_params": {"gap": 24},
    "reps": 1,
    "max_steps": 4800,
}


def _spec_payload(seed: int) -> dict:
    return SimulationSpec(**BASE_SPEC, seed=seed).to_dict()


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _drive(address, payloads, total_requests, clients):
    """Fire *total_requests* POSTs round-robin over *payloads* from
    *clients* threads; returns (latencies_seconds, elapsed_seconds)."""
    per_thread = total_requests // clients
    lots = [[] for _ in range(clients)]
    errors = []

    def run(index):
        latencies = lots[index]
        try:
            with ServeClient(address) as client:
                for i in range(per_thread):
                    body = payloads[(index * per_thread + i) % len(payloads)]
                    start = time.perf_counter()
                    status, _, _ = client.request_raw("POST", "/v1/simulate", body)
                    latencies.append(time.perf_counter() - start)
                    if status != 200:
                        errors.append(status)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(repr(exc))

    threads = [threading.Thread(target=run, args=(i,)) for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise AssertionError(f"load errors: {errors[:5]} ({len(errors)} total)")
    merged = sorted(lat for lot in lots for lat in lot)
    return merged, elapsed


def _leg_stats(latencies, elapsed, requests):
    return {
        "requests": requests,
        "elapsed_seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed > 0 else float("inf"),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p90_ms": _percentile(latencies, 0.90) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "max_ms": latencies[-1] * 1e3 if latencies else float("nan"),
    }


def benchmark_serve(quick: bool = False, clients: int = 0) -> dict:
    """Run the four serve legs and return the JSON payload."""
    load = dict(QUICK_LOAD if quick else FULL_LOAD)
    if clients:
        load["clients"] = clients
    cpu_count = os.cpu_count() or 1

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        with ReproServer(port=0, cache_dir=cache_dir, workers=2) as server:
            address = server.address
            warm_payloads = [_spec_payload(seed) for seed in range(load["warm_keys"])]
            with ServeClient(address) as primer:
                for body in warm_payloads:
                    status, _, _ = primer.request_raw("POST", "/v1/simulate", body)
                    assert status == 200, f"prime failed: {status}"

                # Identity gate: the served warm body must be value-
                # identical to a local simulate() of the same spec.
                _, _, body = primer.request_raw("POST", "/v1/simulate", warm_payloads[0])
                served = json.loads(body)
                local = simulate(SimulationSpec.from_dict(warm_payloads[0])).to_dict()
                served.pop("elapsed_seconds"), local.pop("elapsed_seconds")
                canon = lambda p: json.dumps(p, sort_keys=True)  # noqa: E731
                identity_ok = canon(served) == canon(local)

            # -- warm: 100% hit rate ------------------------------------
            latencies, elapsed = _drive(
                address, warm_payloads, load["warm_requests"], load["clients"]
            )
            warm = _leg_stats(latencies, elapsed, load["warm_requests"])

            # -- mixed: 50% hit rate ------------------------------------
            cold_payloads = [
                _spec_payload(seed) for seed in range(10_000, 10_000 + load["cold_keys"])
            ]
            mixed_payloads = [
                payload
                for pair in zip(cold_payloads, warm_payloads * load["cold_keys"])
                for payload in pair
            ]
            requests = len(mixed_payloads)
            latencies, elapsed = _drive(address, mixed_payloads, requests, load["clients"])
            mixed = _leg_stats(latencies, elapsed, requests)

            # -- cold: 0% hit rate --------------------------------------
            cold_payloads = [
                _spec_payload(seed) for seed in range(20_000, 20_000 + load["cold_keys"])
            ]
            latencies, elapsed = _drive(
                address, cold_payloads, len(cold_payloads), load["clients"]
            )
            cold = _leg_stats(latencies, elapsed, len(cold_payloads))

            # -- coalesce: N identical concurrent cold requests ---------
            with ServeClient(address) as observer:
                runs_before = observer.health()["stats"]["engine_runs"]
            coalesce_payload = _spec_payload(31_337)
            bodies = []

            def post_identical():
                with ServeClient(address) as client:
                    status, _, body = client.request_raw(
                        "POST", "/v1/simulate", coalesce_payload
                    )
                    assert status == 200, status
                    bodies.append(body)

            threads = [
                threading.Thread(target=post_identical) for _ in range(COALESCE_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServeClient(address) as observer:
                health = observer.health()
            coalesce_engine_runs = health["stats"]["engine_runs"] - runs_before
            coalesce = {
                "concurrent_clients": COALESCE_CLIENTS,
                "engine_runs": coalesce_engine_runs,
                "distinct_bodies": len(set(bodies)),
            }
            final_stats = health["stats"]

    return {
        "benchmark": "repro serve: HTTP load at 100/50/0% hit rates plus a coalescing leg",
        "workload": {
            **BASE_SPEC,
            "clients": load["clients"],
            "warm_keys": load["warm_keys"],
            "warm_requests": load["warm_requests"],
            "cold_keys": load["cold_keys"],
        },
        "legs": {"warm": warm, "mixed": mixed, "cold": cold, "coalesce": coalesce},
        "server_stats": final_stats,
        "criteria": {
            "served_equals_simulate_ok": identity_ok,
            "coalesce_single_engine_run_ok": coalesce_engine_runs == 1,
            "coalesce_byte_identical_ok": len(set(bodies)) == 1,
            "warm_p50_ms": warm["p50_ms"],
            "warm_p50_target_ms": WARM_P50_TARGET_MS,
            "warm_requests_per_second": warm["requests_per_second"],
            "throughput_target": THROUGHPUT_TARGET,
            "latency_applicable": cpu_count >= MIN_CPUS_FOR_ASSERT,
            "warm_p50_ok": warm["p50_ms"] < WARM_P50_TARGET_MS,
            "throughput_ok": warm["requests_per_second"] >= THROUGHPUT_TARGET,
        },
        "environment": {
            **bench_environment(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
        },
    }


def assert_criteria(payload: dict) -> None:
    """The acceptance gates; latency asserts only where it can hold."""
    criteria = payload["criteria"]
    assert criteria["served_equals_simulate_ok"], "served payload diverged from simulate()"
    assert criteria["coalesce_single_engine_run_ok"], (
        f"coalescing broke: {payload['legs']['coalesce']['engine_runs']} engine runs "
        f"for {payload['legs']['coalesce']['concurrent_clients']} identical requests"
    )
    assert criteria["coalesce_byte_identical_ok"], "coalesced responses were not byte-identical"
    if criteria["latency_applicable"]:
        assert criteria["warm_p50_ok"], criteria
        assert criteria["throughput_ok"], criteria
    else:
        warn_skipped_criterion(
            "serve_warm_latency_and_throughput",
            f"cpu_count={payload['environment']['cpu_count']} < {MIN_CPUS_FOR_ASSERT} "
            f"(measured p50={criteria['warm_p50_ms']:.2f}ms, "
            f"{criteria['warm_requests_per_second']:.0f} req/s; targets "
            f"<{criteria['warm_p50_target_ms']}ms, >={criteria['throughput_target']:.0f} req/s)",
        )


def format_payload(payload: dict) -> str:
    legs = payload["legs"]
    criteria = payload["criteria"]

    def leg_line(name, leg):
        return (
            f"{name:<6}: {leg['requests']:>5} req in {leg['elapsed_seconds']:.2f}s  "
            f"({leg['requests_per_second']:>7.0f} req/s)  "
            f"p50={leg['p50_ms']:.2f}ms p90={leg['p90_ms']:.2f}ms p99={leg['p99_ms']:.2f}ms"
        )

    lines = [
        f"serve load: {payload['workload']['clients']} clients, "
        f"{payload['workload']['warm_keys']} warm keys "
        f"(n={payload['workload']['n']} {payload['workload']['protocol']})",
        leg_line("warm", legs["warm"]),
        leg_line("mixed", legs["mixed"]),
        leg_line("cold", legs["cold"]),
        f"coalesce: {legs['coalesce']['concurrent_clients']} identical concurrent requests "
        f"-> {legs['coalesce']['engine_runs']} engine run(s), "
        f"{legs['coalesce']['distinct_bodies']} distinct body/ies",
        f"warm p50 {criteria['warm_p50_ms']:.2f}ms (target <{criteria['warm_p50_target_ms']}ms), "
        f"{criteria['warm_requests_per_second']:.0f} req/s "
        f"(target >={criteria['throughput_target']:.0f}) — "
        f"{'asserted' if criteria['latency_applicable'] else 'recorded only: cpu_count=' + str(payload['environment']['cpu_count'])}",
        f"identity vs simulate(): {'ok' if criteria['served_equals_simulate_ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def test_serve_perf(benchmark):
    """Pytest-benchmark target: one four-leg load run at the selected scale."""
    quick = os.environ.get("REPRO_BENCH_SCALE") != "full"
    payload = benchmark.pedantic(
        benchmark_serve, kwargs={"quick": quick}, iterations=1, rounds=1
    )
    print()
    print(format_payload(payload))
    save_bench_payload(payload, str(OUT_PATH))
    assert_criteria(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller request volume")
    parser.add_argument("--clients", type=int, default=0, help="override client thread count")
    parser.add_argument("--out", default=str(OUT_PATH), help="payload destination")
    args = parser.parse_args(argv)
    payload = benchmark_serve(quick=args.quick, clients=args.clients)
    print(format_payload(payload))
    save_bench_payload(payload, args.out)
    assert_criteria(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

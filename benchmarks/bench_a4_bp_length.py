"""A4 - Ablation: Bit-Propagation sub-phase length.

Regenerates ablation A4 from DESIGN.md section 4's design choices.
"""

from .conftest import run_and_check


def test_bp_length(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "A4", bench_scale, bench_store)

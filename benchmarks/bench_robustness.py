"""Fault-injection robustness suite (no experiment id — phase maps).

Runs the robustness campaigns of ``repro.workloads.robustness`` — loss,
stubborn and byzantine phase-transition maps for Two-Choices and
3-Majority plus the Zipf-sampled many-colour leg — and persists the
payload to ``BENCH_robustness.json`` at the repo root so the measured
phase boundaries are comparable across PRs.

Usage::

    pytest benchmarks/bench_robustness.py --benchmark-only            # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_robustness.py --benchmark-only
    python benchmarks/bench_robustness.py [--quick] [--out PATH]

The payload is a simulation artifact, not a wall-clock one: everything
outside its ``execution`` block is a pure function of the campaign
specs and the seed, so the asserted criteria are deterministic at the
``full`` scale.  The quick scale (2 replications per cell) asserts the
zero-fault anchors and warns on the degradation booleans instead of
asserting them.
"""

import os
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_robustness.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.perf_robustness import (  # noqa: E402
    benchmark_robustness,
    format_payload,
    save_payload,
)
from repro.bench.store import warn_skipped_criterion  # noqa: E402


def test_robustness_phase_maps(benchmark):
    """Pytest-benchmark target: the whole suite at the selected scale."""
    full = os.environ.get("REPRO_BENCH_SCALE") == "full"
    payload = benchmark.pedantic(
        benchmark_robustness,
        kwargs={"quick": not full},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_payload(payload))
    save_payload(payload, str(OUT_PATH))
    criteria = payload["criteria"]
    for name, value in criteria.items():
        if name.startswith("zero_fault_consensus_ok_"):
            assert value, (name, criteria)
    bites = [name for name in criteria if name.startswith("fault_injection_bites_")]
    for name in bites:
        if criteria["degradation_assertable"]:
            assert criteria[name], (name, criteria)
        else:
            warn_skipped_criterion(
                name,
                f"quick scale runs {payload['scale']['reps']} replication(s) per "
                f"cell — degradation booleans are recorded, asserted at "
                f"REPRO_BENCH_SCALE=full (measured {criteria[name]})",
            )


if __name__ == "__main__":
    from repro.bench import perf_robustness

    argv = sys.argv[1:]
    if "--out" not in argv:
        argv += ["--out", str(OUT_PATH)]
    raise SystemExit(perf_robustness.main(argv))

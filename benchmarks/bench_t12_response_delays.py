"""T12 - Discussion: robustness to exponential response delays.

Regenerates experiment T12 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_response_delays(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T12", bench_scale, bench_store)

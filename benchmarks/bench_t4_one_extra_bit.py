"""T4 - Theorem 1.2: the OneExtraBit crossover over plain Two-Choices.

Regenerates experiment T4 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_one_extra_bit(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T4", bench_scale, bench_store)

"""Shared plumbing for the benchmark targets.

Each ``bench_tN_*.py`` regenerates one experiment from DESIGN.md's
per-experiment index (the paper has no tables/figures of its own — the
experiments are the claim-derived equivalents; see DESIGN.md §1).

Usage::

    pytest benchmarks/ --benchmark-only                  # quick scale
    REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only

Every target prints its report table (run pytest with ``-s`` to see it
live) and persists the JSON payload under ``benchmarks/results/`` so
EXPERIMENTS.md numbers are regenerable.
"""

import os
from pathlib import Path

import pytest

from repro.bench import FULL, QUICK, ResultStore, run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    """Experiment scale selected via REPRO_BENCH_SCALE (quick|full)."""
    return FULL if os.environ.get("REPRO_BENCH_SCALE") == "full" else QUICK


@pytest.fixture(scope="session")
def bench_store():
    return ResultStore(RESULTS_DIR)


def run_and_check(benchmark, experiment_id, scale, store):
    """Run one experiment under pytest-benchmark and assert its checks.

    ``pedantic`` with a single round: the experiments are statistical
    sweeps with internal trial replication, so wall-clock variance
    across repeated harness invocations is not the interesting metric.
    """
    report = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": scale, "store": store},
        iterations=1,
        rounds=1,
    )
    print()
    print(report.format())
    failed = [name for name, ok in report.checks.items() if not ok]
    assert not failed, f"{experiment_id} shape checks failed: {failed}"
    return report

"""Sparse-topology engine perf benchmark (no experiment id — pure wall clock).

Times the asynchronous engine family on a fixed Two-Choices workload on
the two sparse topologies the acceptance criteria name (2-D torus,
random 8-regular), and persists the payload to ``BENCH_sparse.json`` at
the repo root so the perf trajectory is comparable across PRs.

Usage::

    pytest benchmarks/bench_sparse.py --benchmark-only              # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_sparse.py --benchmark-only
    python benchmarks/bench_sparse.py [--quick] [--out PATH]

The ``full`` pytest scale (and the script without ``--quick``) covers
``n in {1e4, 1e5}``; quick runs stop at ``1e4``.  The headline
criterion — the sparse-sequential engine at least 10x faster than the
per-tick ``SequentialEngine`` on torus and random-regular — is asserted
at whichever scale ran.
"""

import os
import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_sparse.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.perf_sparse import (  # noqa: E402
    DEFAULT_NS,
    QUICK_NS,
    benchmark_sparse,
    format_payload,
    save_payload,
)


def test_sparse_engine_perf(benchmark):
    """Pytest-benchmark target: one sweep at the selected scale."""
    full = os.environ.get("REPRO_BENCH_SCALE") == "full"
    payload = benchmark.pedantic(
        benchmark_sparse,
        kwargs={
            "ns": list(DEFAULT_NS if full else QUICK_NS),
            "trials": 3 if full else 2,
            "per_tick_max_n": 100_000,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_payload(payload))
    save_payload(payload, str(OUT_PATH))
    criteria = payload["criteria"]
    for slug in ("torus", "random_regular"):
        assert criteria[f"sparse_seq_ge_10x_vs_per_tick_{slug}"], criteria
        assert criteria[f"consensus_faster_than_zip_apply_{slug}"], criteria
        # The dispatch crossover must route the small-n mixed phase at
        # least on par with the zip-apply hooks path (the historical
        # raw-sparse 0.77x regression is healed by routing, not tuning).
        assert criteria[f"sparse_seq_mixed_phase_healed_{slug}"], criteria
    assert criteria["consensus_random_regular_converged"], payload["consensus"]


if __name__ == "__main__":
    from repro.bench import perf_sparse

    argv = sys.argv[1:]
    if "--out" not in argv:
        argv += ["--out", str(OUT_PATH)]
    raise SystemExit(perf_sparse.main(argv))

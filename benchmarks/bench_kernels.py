"""Tick-kernel perf benchmark (no experiment id — pure wall clock).

Times the hazard tick loop under each available kernel (numpy, C,
numba) on the fixed Two-Choices torus workload, and persists the
payload to ``BENCH_kernels.json`` at the repo root so the kernel perf
trajectory is comparable across PRs.

Usage::

    pytest benchmarks/bench_kernels.py --benchmark-only               # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_kernels.py --benchmark-only
    python benchmarks/bench_kernels.py [--quick] [--out PATH]

The ``full`` pytest scale (and the script without ``--quick``) runs at
``n = 1e5`` — the scale the acceptance criterion quotes; quick runs at
``n = 1e4``.  The headline criterion — fastest compiled kernel at
least 2x over the numpy loop in the mixed phase — is asserted whenever
a compiled kernel is available; without one (no C toolchain, numba not
installed) the assertion is *skipped loudly* so CI logs show exactly
why no compiled number was recorded.  Bit-identity of compiled
trajectories against the numpy reference is always asserted.
"""

import os
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_kernels.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.bench.perf_kernels import (  # noqa: E402
    DEFAULT_N,
    QUICK_N,
    benchmark_kernels,
    format_payload,
    save_payload,
)


def test_kernel_perf(benchmark):
    """Pytest-benchmark target: one kernel sweep at the selected scale."""
    full = os.environ.get("REPRO_BENCH_SCALE") == "full"
    payload = benchmark.pedantic(
        benchmark_kernels,
        kwargs={
            "n": DEFAULT_N if full else QUICK_N,
            "trials": 3 if full else 2,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_payload(payload))
    save_payload(payload, str(OUT_PATH))
    criteria = payload["criteria"]
    if criteria["compiled_kernel"] is None:
        pytest.skip(
            "SKIPPED LOUDLY: no compiled kernel available on this host, "
            f"numpy numbers only: {criteria['compiled_kernel_skipped']}"
        )
    assert criteria["kernel_bit_identical"], payload["criteria"]
    assert criteria["kernel_speedup_ge_2x"], payload["criteria"]


if __name__ == "__main__":
    from repro.bench import perf_kernels

    argv = sys.argv[1:]
    if "--out" not in argv:
        argv += ["--out", str(OUT_PATH)]
    raise SystemExit(perf_kernels.main(argv))

"""A1 - Ablation: slow-clock fraction vs the o(n) poorly-synchronised budget.

Regenerates ablation A1 from DESIGN.md section 4's design choices.
"""

from .conftest import run_and_check


def test_clock_skew(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "A1", bench_scale, bench_store)

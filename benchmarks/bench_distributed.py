"""Distributed-executor perf benchmark (no experiment id — pure wall clock).

Times the same CPU-bound campaign grid as ``bench_campaign.py``
(asynchronous Two-Choices on ``K_n`` through the ensemble counts fast
path, 12 points with ``n`` log-spaced up to ``1e8``) against the socket
coordinator and persists the payload to ``BENCH_distributed.json`` at
the repo root:

* ``serial``      — ``run_campaign(executor="serial")``, cold, the
  baseline;
* ``distributed`` — 4 localhost ``repro worker`` subprocesses pulling
  from a :class:`~repro.api.DistributedExecutor`, cold, populating a
  fresh cache directory (worker *startup* happens before the timer —
  the criterion measures steady-state dispatch, not Python import
  time);
* ``warm``        — the campaign replayed serially against the cache
  the *distributed* leg populated (zero engine runs proves the
  coordinator persisted every point as it landed);
* ``kill``        — the distributed leg again, but one worker is
  SIGKILLed as soon as the third result lands; the survivors absorb
  the requeued leases and the campaign must still complete.

Acceptance criteria (ISSUE 7): with 4 localhost workers the grid runs
>= 2x faster than serial wall-clock — asserted wherever the machine
actually has >= 4 CPUs (``speedup_applicable``; smaller boxes record
the measurement and emit a loud ``::warning``) — and every leg is
value-for-value identical to serial (asserted unconditionally,
including the worker-kill leg and the warm replay).

Usage::

    pytest benchmarks/bench_distributed.py --benchmark-only             # quick
    REPRO_BENCH_SCALE=full pytest benchmarks/bench_distributed.py --benchmark-only
    python benchmarks/bench_distributed.py [--quick] [--workers N] [--out PATH]
"""

import argparse
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).parent.parent
OUT_PATH = ROOT / "BENCH_distributed.json"

try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(ROOT / "src"))

from repro.api import (  # noqa: E402
    CampaignSpec,
    DistributedExecutor,
    SimulationSpec,
    SweepSpec,
    run_campaign,
)
from repro.bench.store import (  # noqa: E402
    bench_environment,
    save_bench_payload,
    warn_skipped_criterion,
)
from repro.workloads.sweeps import log_spaced_ints  # noqa: E402

WORKERS = 4
SPEEDUP_TARGET = 2.0
KILL_AFTER_RESULTS = 3

QUICK_GRID = {"low": 10_000_000, "high": 100_000_000, "points": 12, "reps": 4}
FULL_GRID = {"low": 10_000_000, "high": 100_000_000, "points": 12, "reps": 8}

#: Workers are spawned (and given this long to finish importing Python)
#: before the distributed timer starts, so the speedup criterion
#: measures dispatch throughput rather than interpreter start-up.
WORKER_WARMUP_SECONDS = 2.0


def _campaign(grid) -> CampaignSpec:
    ns = log_spaced_ints(grid["low"], grid["high"], grid["points"])
    base = SimulationSpec(protocol="two-choices", n=ns[0], reps=grid["reps"])
    return CampaignSpec(
        base=base, sweep=SweepSpec(axes={"n": ns}), seed=20170725, name="bench-distributed"
    )


def _deterministic(result):
    payload = result.to_dict()
    del payload["execution"]
    return payload


def _spawn_workers(executor, count, connect_retry=120.0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--connect",
        f"{executor.host}:{executor.port}",
        "--connect-retry",
        f"{connect_retry:.0f}",
    ]
    return [
        subprocess.Popen(
            command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        for _ in range(count)
    ]


def _reap(procs):
    for proc in procs:
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=60)


def benchmark_distributed(quick: bool = False, workers: int = WORKERS) -> dict:
    """Run the four-leg comparison and return the JSON payload."""
    grid = QUICK_GRID if quick else FULL_GRID
    campaign = _campaign(grid)
    cpu_count = os.cpu_count() or 1

    start = time.perf_counter()
    serial = run_campaign(campaign, executor="serial")
    serial_seconds = time.perf_counter() - start

    # -- distributed cold + warm replay from its cache ------------------
    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as cache_dir:
        with DistributedExecutor(lease_timeout=60.0) as executor:
            procs = _spawn_workers(executor, workers)
            time.sleep(WORKER_WARMUP_SECONDS)
            start = time.perf_counter()
            distributed = run_campaign(campaign, executor=executor, cache=cache_dir)
            distributed_seconds = time.perf_counter() - start
            _reap(procs)  # clean shutdown frames were sent at batch end
            distributed_stats = dict(executor.last_stats)

        start = time.perf_counter()
        warm = run_campaign(campaign, cache=cache_dir)
        warm_seconds = time.perf_counter() - start

    # -- worker-kill leg ------------------------------------------------
    with DistributedExecutor(lease_timeout=60.0) as executor:
        procs = _spawn_workers(executor, workers)
        landed = {"count": 0, "killed": False}
        lock = threading.Lock()

        def kill_one(position, payload):
            with lock:
                landed["count"] += 1
                if landed["count"] == KILL_AFTER_RESULTS and not landed["killed"]:
                    landed["killed"] = True
                    procs[0].kill()

        executor.progress_hook = kill_one
        time.sleep(WORKER_WARMUP_SECONDS)
        start = time.perf_counter()
        killed_run = run_campaign(campaign, executor=executor)
        kill_seconds = time.perf_counter() - start
        _reap(procs)
        kill_stats = dict(executor.last_stats)

    serial_payload = _deterministic(serial)
    identical = serial_payload == _deterministic(distributed) == _deterministic(warm)
    kill_identical = serial_payload == _deterministic(killed_run)
    speedup = serial_seconds / distributed_seconds if distributed_seconds > 0 else float("inf")
    return {
        "benchmark": "distributed executor: serial vs localhost workers, plus a worker-kill leg",
        "workload": {
            "protocol": "two-choices",
            "model": "sequential",
            "initial": "benchmark-split",
            "ns": [int(n) for n in campaign.sweep.axes["n"]],
            "reps_per_point": grid["reps"],
            "points": campaign.size,
            "campaign_seed": campaign.seed,
        },
        "timings": {
            "serial_cold_seconds": serial_seconds,
            "distributed_cold_seconds": distributed_seconds,
            "warm_replay_seconds": warm_seconds,
            "kill_leg_seconds": kill_seconds,
        },
        "distributed_stats": distributed_stats,
        "kill_leg_stats": kill_stats,
        "criteria": {
            "distributed_identity_ok": identical,
            "warm_engine_runs": warm.engine_runs,
            "warm_replay_ok": warm.engine_runs == 0,
            "workers": workers,
            "speedup_vs_serial": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "speedup_applicable": cpu_count >= workers,
            "speedup_ok": speedup >= SPEEDUP_TARGET,
            "kill_identity_ok": kill_identical,
            "worker_killed_mid_campaign": landed["killed"],
        },
        "environment": {
            **bench_environment(),
            "platform": platform.platform(),
            "cpu_count": cpu_count,
        },
    }


def assert_criteria(payload: dict) -> None:
    """The acceptance gates; speedup asserts only where it can hold."""
    criteria = payload["criteria"]
    assert criteria["distributed_identity_ok"], "serial/distributed/warm results diverged"
    assert criteria["kill_identity_ok"], "worker-kill leg diverged from serial"
    assert criteria["worker_killed_mid_campaign"], "kill leg finished before the kill fired"
    assert criteria["warm_replay_ok"], criteria
    if criteria["speedup_applicable"]:
        assert criteria["speedup_ok"], criteria
    else:
        warn_skipped_criterion(
            "distributed_speedup_vs_serial",
            f"cpu_count={payload['environment']['cpu_count']} < "
            f"{criteria['workers']} localhost workers on this machine "
            f"(measured {criteria['speedup_vs_serial']:.2f}x, "
            f"target {criteria['speedup_target']}x)",
        )


def format_payload(payload: dict) -> str:
    t = payload["timings"]
    c = payload["criteria"]
    lines = [
        f"campaign grid: {payload['workload']['points']} points x "
        f"{payload['workload']['reps_per_point']} reps, "
        f"n up to {max(payload['workload']['ns']):.0e}",
        f"serial cold        : {t['serial_cold_seconds']:.2f}s",
        f"distributed ({c['workers']} wrk): {t['distributed_cold_seconds']:.2f}s  "
        f"({c['speedup_vs_serial']:.2f}x vs serial; target {c['speedup_target']}x, "
        f"{'asserted' if c['speedup_applicable'] else 'recorded only: cpu_count=' + str(payload['environment']['cpu_count'])})",
        f"warm replay        : {t['warm_replay_seconds']:.3f}s  "
        f"(engine runs={c['warm_engine_runs']})",
        f"worker-kill leg    : {t['kill_leg_seconds']:.2f}s  "
        f"(requeued={payload['kill_leg_stats'].get('requeued', 0)}, "
        f"workers seen={payload['kill_leg_stats'].get('workers_seen', 0)})",
        f"distributed identity: {'ok' if c['distributed_identity_ok'] else 'FAILED'}; "
        f"kill-leg identity: {'ok' if c['kill_identity_ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def test_distributed_executor_perf(benchmark):
    """Pytest-benchmark target: one four-leg comparison at the selected scale."""
    quick = os.environ.get("REPRO_BENCH_SCALE") != "full"
    payload = benchmark.pedantic(
        benchmark_distributed, kwargs={"quick": quick}, iterations=1, rounds=1
    )
    print()
    print(format_payload(payload))
    save_bench_payload(payload, str(OUT_PATH))
    assert_criteria(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer reps per point")
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--out", default=str(OUT_PATH), help="payload destination")
    args = parser.parse_args(argv)
    payload = benchmark_distributed(quick=args.quick, workers=args.workers)
    print(format_payload(payload))
    save_bench_payload(payload, args.out)
    assert_criteria(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A2 - Ablation: Sync-Gadget sampling length (the log^3 log n choice).

Regenerates ablation A2 from DESIGN.md section 4's design choices.
"""

from .conftest import run_and_check


def test_sync_samples(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "A2", bench_scale, bench_store)

"""T1 - Theorem 1.1 upper bound: Two-Choices needs O((n/c1) log n) rounds.

Regenerates experiment T1 from DESIGN.md's per-experiment index.
"""

from .conftest import run_and_check


def test_two_choices_runtime(benchmark, bench_scale, bench_store):
    run_and_check(benchmark, "T1", bench_scale, bench_store)
